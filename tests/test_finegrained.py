"""Tests for the fine-grained (interpolating) scheduler extension."""

import pytest
from hypothesis import given, strategies as st

from repro.core.finegrained import (
    InterpolatingScheduler,
    PAPER_ANCHORS,
    anchors_from_measurements,
)
from repro.core.scheduler import Decision, SizeAwareScheduler
from repro.errors import ConfigurationError
from repro.units import GB


class TestInterpolation:
    def test_hits_anchors_exactly(self):
        scheduler = InterpolatingScheduler()
        assert scheduler.cross_for_ratio(0.0) == pytest.approx(10 * GB)
        assert scheduler.cross_for_ratio(0.4) == pytest.approx(16 * GB)
        assert scheduler.cross_for_ratio(1.6) == pytest.approx(32 * GB)

    def test_clamps_outside_range(self):
        scheduler = InterpolatingScheduler()
        assert scheduler.cross_for_ratio(5.0) == pytest.approx(32 * GB)
        assert scheduler.cross_for_ratio(None) == pytest.approx(10 * GB)

    def test_log_interpolation_between_anchors(self):
        scheduler = InterpolatingScheduler()
        # Midpoint of 0.4..1.6 in ratio -> geometric mean of 16 and 32 GB.
        mid = scheduler.cross_for_ratio(1.0)
        assert mid == pytest.approx((16 * GB * 32 * GB) ** 0.5, rel=1e-9)

    @given(st.floats(min_value=0, max_value=3))
    def test_monotone_in_ratio(self, ratio):
        scheduler = InterpolatingScheduler()
        assert scheduler.cross_for_ratio(ratio) <= scheduler.cross_for_ratio(
            ratio + 0.1
        ) + 1e-6

    def test_agrees_with_algorithm1_at_band_representatives(self):
        """At the measured ratios the two schedulers make identical calls."""
        banded = SizeAwareScheduler()
        fine = InterpolatingScheduler()
        for ratio, cross in PAPER_ANCHORS:
            for size in (cross * 0.9, cross * 1.1):
                # Algorithm 1 band for ratio 0.0 and 0.4 are different
                # bands but share the measured cross points at the edges.
                assert fine.decide(size, ratio) in (
                    Decision.SCALE_UP, Decision.SCALE_OUT,
                )
        # A 0.8-ratio 20 GB job: banded says scale-out (16 GB band),
        # fine-grained interpolates ~21.4 GB and says scale-up.
        assert banded.decide(20 * GB, 0.8) is Decision.SCALE_OUT
        assert fine.decide(20 * GB, 0.8) is Decision.SCALE_UP

    def test_decide_job(self):
        from repro.mapreduce.job import JobSpec

        job = JobSpec(
            job_id="x", app="t", input_bytes=20 * GB,
            shuffle_bytes=16 * GB, output_bytes=0,
            map_cpu_per_byte=0, reduce_cpu_per_byte=0,
        )
        fine = InterpolatingScheduler()
        assert fine.decide_job(job) is Decision.SCALE_UP
        assert fine.decide_job(job, ratio_known=False) is Decision.SCALE_OUT


class TestValidation:
    def test_needs_two_anchors(self):
        with pytest.raises(ConfigurationError):
            InterpolatingScheduler([(0.4, 16 * GB)])

    def test_rejects_duplicate_ratios(self):
        with pytest.raises(ConfigurationError):
            InterpolatingScheduler([(0.4, 16 * GB), (0.4, 20 * GB)])

    def test_rejects_negative_values(self):
        with pytest.raises(ConfigurationError):
            InterpolatingScheduler([(-0.1, 16 * GB), (0.4, 20 * GB)])
        with pytest.raises(ConfigurationError):
            InterpolatingScheduler([(0.1, 0.0), (0.4, 20 * GB)])

    def test_rejects_negative_query(self):
        with pytest.raises(ConfigurationError):
            InterpolatingScheduler().cross_for_ratio(-1.0)


class TestAnchorsFromMeasurements:
    def test_drops_non_crossings(self):
        anchors = anchors_from_measurements(
            [(0.0, 10 * GB), (0.4, None), (1.6, 32 * GB)]
        )
        assert anchors == [(0.0, 10 * GB), (1.6, 32 * GB)]

    def test_requires_two_crossings(self):
        with pytest.raises(ConfigurationError):
            anchors_from_measurements([(0.0, 10 * GB), (0.4, None)])

    def test_sorts_by_ratio(self):
        anchors = anchors_from_measurements([(1.6, 32 * GB), (0.0, 10 * GB)])
        assert anchors[0][0] == 0.0
