"""The sqlite result store: contract parity with the JSON cache.

What matters here is that the two backends are interchangeable behind
the :class:`~repro.runner.cache.ResultStore` protocol: same payload
bytes for the same keys, same corruption-as-miss semantics, and a
migration that keeps a warm grid warm (zero misses, ``CODE_SALT``
untouched).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.runner.cache import ResultCache, ResultStore
from repro.runner.spec import CACHE_SCHEMA, canonical_json
from repro.runner.store import (
    SQLITE_STORE_NAME,
    SqliteResultCache,
    default_sqlite_path,
    migrate_json_tree,
    open_result_store,
    store_report,
)

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


def ok_payload(value: float = 1.0) -> dict:
    return {"schema": CACHE_SCHEMA, "kind": "probe", "status": "ok",
            "result": {"value": value}, "error": ""}


def hole_payload(error_type: str = "CapacityError") -> dict:
    return {"schema": CACHE_SCHEMA, "kind": "isolated",
            "status": "infeasible", "result": None,
            "error": "too big", "error_type": error_type}


@pytest.fixture
def store(tmp_path):
    return SqliteResultCache(tmp_path / "results.sqlite")


class TestRoundTrip:
    def test_put_then_get(self, store):
        payload = ok_payload(3.5)
        store.put(KEY_A, payload)
        assert store.get(KEY_A) == payload
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_absent_key_is_a_miss(self, store):
        assert store.get(KEY_A) is None
        assert store.stats.misses == 1

    def test_put_overwrites(self, store):
        store.put(KEY_A, ok_payload(1.0))
        store.put(KEY_A, ok_payload(2.0))
        assert store.get(KEY_A)["result"]["value"] == 2.0

    def test_bulk_read_and_write(self, store):
        store.put_many([(KEY_A, ok_payload(1.0)), (KEY_B, ok_payload(2.0))])
        found = store.get_many([KEY_A, KEY_B, KEY_C])
        assert set(found) == {KEY_A, KEY_B}
        assert store.stats.hits == 2 and store.stats.misses == 1

    def test_bulk_read_spans_select_chunks(self, store):
        keys = [f"{i:064x}" for i in range(1200)]
        store.put_many([(k, ok_payload(float(i)))
                        for i, k in enumerate(keys)])
        found = store.get_many(keys)
        assert len(found) == 1200
        assert found[keys[7]]["result"]["value"] == 7.0

    def test_satisfies_result_store_protocol(self, store):
        assert isinstance(store, ResultStore)
        assert isinstance(ResultCache(), ResultStore)


class TestCorruptionRecovery:
    """A broken row is a miss; a broken database is an empty store."""

    def test_malformed_row_is_a_miss_and_removed(self, store):
        store.put(KEY_A, ok_payload())
        conn = sqlite3.connect(str(store.path))
        conn.execute("UPDATE results SET payload = '{truncat'")
        conn.commit()
        conn.close()
        assert store.get(KEY_A) is None
        assert store.stats.corrupt == 1
        assert len(store) == 0

    def test_schema_mismatch_is_a_miss(self, store):
        store.put(KEY_A, {**ok_payload(), "schema": CACHE_SCHEMA + 99})
        assert store.get(KEY_A) is None
        assert store.stats.corrupt == 1

    def test_garbage_database_file_is_rebuilt_empty(self, tmp_path):
        path = tmp_path / "results.sqlite"
        path.write_text("this is not a sqlite database, not even close")
        store = SqliteResultCache(path)
        assert store.get_many([KEY_A]) == {}
        store.put(KEY_B, ok_payload(5.0))
        assert store.get(KEY_B)["result"]["value"] == 5.0

    def test_recompute_can_rewrite_after_corruption(self, store):
        store.put(KEY_A, {**ok_payload(), "status": "exploded"})
        assert store.get(KEY_A) is None
        store.put(KEY_A, ok_payload(9.0))
        assert store.get(KEY_A)["result"]["value"] == 9.0


class TestByteIdentity:
    """Same keys -> same payload bytes on either backend."""

    def test_payloads_match_json_backend(self, tmp_path, store):
        json_cache = ResultCache(tmp_path / "cache")
        payloads = {KEY_A: ok_payload(1.25), KEY_B: hole_payload()}
        for key, payload in payloads.items():
            json_cache.put(key, payload)
            store.put(key, payload)
        for key in payloads:
            assert canonical_json(json_cache.get(key)) == canonical_json(
                store.get(key)
            )


class TestMigration:
    def test_migrate_keeps_grid_warm(self, tmp_path, store):
        source = ResultCache(tmp_path / "cache")
        keys = [f"{i:064x}" for i in range(25)]
        for i, key in enumerate(keys):
            source.put(key, ok_payload(float(i)))
        assert migrate_json_tree(source, store) == 25
        found = store.get_many(keys)
        assert len(found) == 25  # zero misses on a previously warm grid
        assert store.stats.misses == 0
        for key in keys:
            assert canonical_json(found[key]) == canonical_json(
                source.get(key)
            )

    def test_migrate_skips_corrupt_source_files(self, tmp_path, store):
        source = ResultCache(tmp_path / "cache")
        source.put(KEY_A, ok_payload())
        bad = source.root / KEY_B[:2] / f"{KEY_B}.json"
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{nope")
        assert migrate_json_tree(source, store) == 1
        assert store.get(KEY_A) is not None

    def test_migrate_is_idempotent(self, tmp_path, store):
        source = ResultCache(tmp_path / "cache")
        source.put(KEY_A, ok_payload())
        assert migrate_json_tree(source, store) == 1
        assert migrate_json_tree(source, store) == 1
        assert len(store) == 1


class TestMaintenance:
    def test_len_entries_info(self, store):
        store.put_many([(KEY_A, ok_payload()), (KEY_B, hole_payload())])
        assert len(store) == 2
        assert dict(store.entries())[KEY_A] == ok_payload()
        assert [key for key, _ in store.holes()] == [KEY_B]
        info = store.info()
        assert info.entries == 2
        assert info.by_status == {"ok": 1, "infeasible": 1}
        assert info.total_bytes > 0

    def test_clear_removes_everything(self, store):
        store.put_many([(KEY_A, ok_payload()), (KEY_B, ok_payload())])
        assert store.clear() == 2
        assert len(store) == 0

    def test_vacuum_reports_sizes(self, store):
        store.put_many(
            [(f"{i:064x}", ok_payload(float(i))) for i in range(50)]
        )
        store.clear()
        before, after = store.vacuum()
        assert before > 0 and after > 0
        assert after <= before

    def test_store_report_counts_holes_by_error_type(self, store):
        store.put_many([
            (KEY_A, hole_payload("CapacityError")),
            (KEY_B, hole_payload("CapacityError")),
            (KEY_C, hole_payload("ValueError")),
        ])
        report = store_report(store)
        assert report["backend"] == "sqlite"
        assert report["holes_by_error_type"] == {
            "CapacityError": 2, "ValueError": 1,
        }


class TestOpenResultStore:
    def test_default_is_json(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "root"))
        store = open_result_store()
        assert store.backend == "json"
        assert store.root == tmp_path / "root"

    def test_env_selects_sqlite(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "root"))
        store = open_result_store()
        assert store.backend == "sqlite"
        assert store.path == tmp_path / "root" / SQLITE_STORE_NAME
        assert default_sqlite_path() == store.path

    def test_argument_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert open_result_store("json", root=tmp_path).backend == "json"

    def test_unknown_backend_raises(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown result-store"):
            open_result_store("parquet", root=tmp_path)
