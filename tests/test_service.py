"""The always-on deployment daemon (repro.service; see docs/SERVICE.md).

Four invariants pin the design:

* **determinism** — a trace streamed through the service as NDJSON
  produces byte-identical ``JobResult`` lists to a batch
  ``Deployment.run_trace`` of the same jobs;
* **durability** — kill the service mid-run, restore from its
  checkpoint, drain: no job lost, none double-counted, results still
  byte-identical;
* **backpressure** — admission beyond the configured bounds yields
  explicit per-job rejections with machine-readable reasons and
  matching metrics counters, never silent drops;
* **wire hygiene** — malformed NDJSON is reported per line and rejects
  the whole batch; corrupt checkpoints fail loudly.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.api import (
    JobStatus,
    JobSubmission,
    ServiceState,
    validate_ndjson,
)
from repro.core.architectures import hybrid
from repro.core.deployment import Deployment
from repro.errors import CheckpointCorruptError, ServiceError
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    CheckpointStore,
    REASON_DUPLICATE,
    REASON_MEMBER_FULL,
    REASON_SERVICE_FULL,
    ReproService,
    ServiceClient,
    serve,
)
from repro.units import GB, MB
from repro.workload.fb2009 import generate_fb2009


def make_trace(num_jobs: int = 30, seed: int = 2009):
    duration = 86400.0 * num_jobs / 6000.0
    return generate_fb2009(
        num_jobs=num_jobs, seed=seed, duration=duration
    ).shrink(5.0)


def submissions_for(trace):
    return [JobSubmission.from_tracejob(job) for job in trace.jobs]


def ndjson_for(trace) -> str:
    return "".join(
        json.dumps(s.to_wire(), sort_keys=True) + "\n"
        for s in submissions_for(trace)
    )


def results_bytes(results) -> str:
    return json.dumps([dataclasses.asdict(r) for r in results], sort_keys=True)


class TestWireModels:
    def test_submission_round_trip(self):
        sub = JobSubmission(job_id="j1", input_bytes=2 * GB,
                            shuffle_bytes=1 * GB, arrival_time=3.5)
        assert JobSubmission.from_wire(sub.to_wire()) == sub

    def test_unknown_wire_field_rejected(self):
        wire = JobSubmission(job_id="j1", input_bytes=1).to_wire()
        wire["surprise"] = 1
        with pytest.raises(ServiceError, match="surprise"):
            JobSubmission.from_wire(wire)

    def test_wire_version_skew_rejected(self):
        wire = JobSubmission(job_id="j1", input_bytes=1).to_wire()
        wire["version"] = 99
        with pytest.raises(ServiceError, match="version"):
            JobSubmission.from_wire(wire)

    def test_validate_ndjson_reports_bad_lines(self):
        text = "\n".join([
            json.dumps(JobSubmission(job_id="a", input_bytes=1).to_wire()),
            "{not json",
            json.dumps({"job_id": "b"}),  # missing input_bytes
            "",
            json.dumps(JobSubmission(job_id="c", input_bytes=2).to_wire()),
        ])
        report = validate_ndjson(text)
        assert not report.ok
        assert [lineno for lineno, _ in report.errors] == [2, 3]
        # Valid lines are still parsed so callers can show what would load.
        assert [s.job_id for s in report.submissions] == ["a", "c"]

    def test_validate_ndjson_flags_duplicates(self):
        line = json.dumps(JobSubmission(job_id="a", input_bytes=1).to_wire())
        report = validate_ndjson(line + "\n" + line + "\n")
        assert not report.ok
        assert "duplicate" in report.errors[0][1]

    def test_service_state_round_trip(self):
        state = ServiceState(
            architecture="Hybrid", register=True, clock=12.5,
            accepted=[JobSubmission(job_id="a", input_bytes=1)],
            finished=["a"], counters={"accepted": 1.0},
            max_pending_per_member=4, max_total_pending=None,
        )
        assert ServiceState.from_wire(state.to_wire()) == state


class TestDeterminismPin:
    """Streamed admission == batch run_trace, byte for byte."""

    def test_ndjson_stream_matches_run_trace(self):
        trace = make_trace(30)
        reference = Deployment(hybrid()).run_trace(trace.to_jobspecs())

        service = ReproService("Hybrid")
        statuses, report = service.submit_ndjson(ndjson_for(trace))
        assert report.ok and all(s.accepted for s in statuses)
        service.drain()

        assert results_bytes(service.results) == results_bytes(reference)

    def test_chunked_stream_with_interleaved_advance_matches(self):
        """Admission interleaved with clock advances — the service's
        actual operating mode — still reproduces the batch schedule."""
        trace = make_trace(30)
        reference = Deployment(hybrid()).run_trace(trace.to_jobspecs())

        service = ReproService("Hybrid")
        subs = submissions_for(trace)
        for start in range(0, len(subs), 7):
            for sub in subs[start:start + 7]:
                assert service.submit(sub).accepted
            service.advance_until(min(s.arrival_time for s in subs))
        service.drain()

        assert results_bytes(service.results) == results_bytes(reference)


class TestLifecycle:
    """Stream 50 jobs, kill mid-run, restore, drain: nothing lost."""

    def test_kill_restore_drain(self, tmp_path):
        trace = make_trace(50)
        reference = Deployment(hybrid()).run_trace(trace.to_jobspecs())
        path = str(tmp_path / "state.json")

        service = ReproService("Hybrid", checkpoint_path=path)
        subs = submissions_for(trace)
        for start in range(0, len(subs), 10):
            chunk = "".join(
                json.dumps(s.to_wire()) + "\n" for s in subs[start:start + 10]
            )
            statuses, report = service.submit_ndjson(chunk)
            assert report.ok and all(s.accepted for s in statuses)
        service.advance_until(100.0)
        mid_results = len(service.results)
        assert 0 < mid_results < 50
        del service  # the crash: in-memory state is gone

        restored = ReproService.restore(path)
        summary = restored.drain()
        assert summary["accepted"] == 50
        assert summary["finished"] == 50
        assert summary["pending"] == 0

        job_ids = [r.job_id for r in restored.results]
        assert len(job_ids) == len(set(job_ids)) == 50  # none double-counted
        assert results_bytes(restored.results) == results_bytes(reference)

    def test_metrics_totals_match_accounting(self, tmp_path):
        trace = make_trace(20)
        service = ReproService(
            "Hybrid", checkpoint_path=str(tmp_path / "s.json")
        )
        service.submit_ndjson(ndjson_for(trace))
        summary = service.drain()
        dump = service.metrics_dump()
        assert dump["service"]["accepted"] == summary["accepted"] == 20
        assert dump["service"]["finished"] == summary["finished"] == 20
        assert dump["service"]["rejected"] == 0
        assert dump["service"]["pending"] == 0
        # The simulation plane stays attached: same deployment counters
        # a batch replay would produce (fault plane included).
        assert dump["faults"]["jobs_failed"] == summary["failed"]
        assert "metrics" in dump

    def test_restore_preserves_admission_counters(self, tmp_path):
        path = str(tmp_path / "state.json")
        service = ReproService("Hybrid", checkpoint_path=path)
        service.submit(JobSubmission(job_id="a", input_bytes=1 * GB))
        service.submit(JobSubmission(job_id="a", input_bytes=1 * GB))  # dup
        service.checkpoint()

        restored = ReproService.restore(path)
        dump = restored.metrics_dump()
        assert dump["service"]["accepted"] == 1
        assert dump["service"]["rejected"] == 1

    def test_restore_missing_checkpoint_fails_loudly(self, tmp_path):
        with pytest.raises(ServiceError, match="no checkpoint"):
            ReproService.restore(str(tmp_path / "nope.json"))

    def test_corrupt_checkpoint_fails_loudly(self, tmp_path):
        # With no intact generation to fall back to, load raises the
        # typed error (still a ServiceError for old callers).
        path = tmp_path / "state.json"
        path.write_text("{torn write")
        with pytest.raises(CheckpointCorruptError, match="corrupt"):
            CheckpointStore(path).load()

    def test_checkpoint_schema_violation_fails_loudly(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ServiceError):
            CheckpointStore(path).load()


class TestBackpressure:
    """Explicit 429-style rejection, never a silent drop."""

    def test_rejections_are_explicit_and_counted(self):
        trace = make_trace(30)
        service = ReproService(
            "Hybrid",
            policy=AdmissionPolicy(max_pending_per_member=3,
                                   max_total_pending=5),
        )
        statuses, report = service.submit_ndjson(ndjson_for(trace))
        assert report.ok
        assert len(statuses) == 30  # every job answered, none dropped
        accepted = [s for s in statuses if s.accepted]
        rejected = [s for s in statuses if not s.accepted]
        assert accepted and rejected
        assert all(
            s.reason in (REASON_MEMBER_FULL, REASON_SERVICE_FULL)
            for s in rejected
        )
        dump = service.metrics_dump()
        assert dump["service"]["accepted"] == len(accepted)
        assert dump["service"]["rejected"] == len(rejected)

    def test_draining_frees_capacity_for_resubmission(self):
        service = ReproService(
            "Hybrid", policy=AdmissionPolicy(max_total_pending=2)
        )
        subs = [
            JobSubmission(job_id=f"j{i}", input_bytes=64 * MB)
            for i in range(3)
        ]
        first = [service.submit(s) for s in subs]
        assert [s.accepted for s in first] == [True, True, False]
        assert first[2].reason == REASON_SERVICE_FULL
        service.drain()
        assert service.submit(subs[2]).accepted  # capacity credited back

    def test_duplicate_job_id_rejected(self):
        service = ReproService("Hybrid")
        sub = JobSubmission(job_id="same", input_bytes=1 * GB)
        assert service.submit(sub).accepted
        status = service.submit(sub)
        assert not status.accepted
        assert status.reason == REASON_DUPLICATE

    def test_malformed_batch_admits_nothing(self):
        service = ReproService("Hybrid")
        good = json.dumps(JobSubmission(job_id="g", input_bytes=1).to_wire())
        statuses, report = service.submit_ndjson(good + "\n{bad\n")
        assert not report.ok
        assert statuses == []
        assert service.job_status("g") is None  # no partial admission

    def test_admission_controller_underflow_is_an_error(self):
        controller = AdmissionController(AdmissionPolicy(), members=2)
        with pytest.raises(ServiceError, match="release without matching"):
            controller.release(0)


class TestAdmissionEdges:
    """NDJSON wire edges: mid-stream corruption never partially admits,
    and rejection counters reconcile with the instruments."""

    def test_malformed_mid_stream_admits_nothing(self):
        trace = make_trace(12)
        lines = ndjson_for(trace).splitlines()
        lines.insert(6, '{"job_id": "torn", "input_bytes": ')  # truncated
        service = ReproService("Hybrid")
        statuses, report = service.submit_ndjson("\n".join(lines) + "\n")
        assert not report.ok
        assert statuses == []
        assert [lineno for lineno, _ in report.errors] == [7]
        # Not even the six well-formed lines *before* the torn one got in.
        for sub in submissions_for(trace):
            assert service.job_status(sub.job_id) is None
        dump = service.metrics_dump()
        assert dump["service"]["accepted"] == 0
        assert dump["service"]["pending"] == 0

    def test_rejection_counters_reconcile_with_instruments(self):
        service = ReproService(
            "Hybrid", policy=AdmissionPolicy(max_total_pending=5)
        )
        statuses, report = service.submit_ndjson(ndjson_for(make_trace(30)))
        assert report.ok
        rejected = [s for s in statuses if not s.accepted]
        assert rejected  # the 30-job batch overflows 5 slots
        duplicate = service.submit(
            JobSubmission(job_id=statuses[0].job_id, input_bytes=1 * GB)
        )
        assert duplicate.reason == REASON_DUPLICATE
        dump = service.metrics_dump()
        per_reason = {
            name.rsplit(".", 1)[1]: value
            for name, value in dump["metrics"].items()
            if name.startswith("service.admission.rejected.")
        }
        # The per-reason counters partition the total, which matches
        # both the instruments and the per-job statuses.
        assert sum(per_reason.values()) == dump["service"]["rejected"]
        assert dump["service"]["rejected"] == service.instruments.rejected_total
        assert dump["service"]["rejected"] == len(rejected) + 1
        assert per_reason[REASON_DUPLICATE] == 1


class TestHTTPSurface:
    """End-to-end over a real socket (ephemeral port)."""

    @pytest.fixture()
    def server(self, tmp_path):
        service = ReproService(
            "Hybrid",
            policy=AdmissionPolicy(max_total_pending=40),
            checkpoint_path=str(tmp_path / "state.json"),
        )
        httpd = serve(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            yield httpd
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_full_round_trip(self, server):
        client = ServiceClient(server.url)
        assert client.health()["status"] == "ok"

        status = client.submit(JobSubmission(job_id="one", input_bytes=1 * GB))
        assert isinstance(status, JobStatus) and status.accepted

        trace = make_trace(10)
        statuses = client.submit_ndjson(ndjson_for(trace))
        assert len(statuses) == 10 and all(s.accepted for s in statuses)

        assert client.job_status("one").state == "accepted"
        summary = client.drain()
        assert summary["finished"] == summary["accepted"] == 11
        assert client.job_status("one").state == "finished"
        assert client.job_status("one").result["execution_time"] > 0
        assert client.job_status("ghost") is None

        dump = client.metrics()
        assert dump["service"]["finished"] == 11

    def test_schema_error_is_http_400(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError, match="schema"):
            client.submit_ndjson('{"job_id": "x"}\n')  # missing input_bytes

    def test_backpressure_is_http_429(self, server):
        client = ServiceClient(server.url)
        # Saturate the 40-slot service; the overflow batch is all-rejected.
        big = make_trace(60, seed=7)
        statuses = client.submit_ndjson(ndjson_for(big))
        assert sum(1 for s in statuses if s.accepted) == 40
        overflow = client.submit(
            JobSubmission(job_id="over", input_bytes=1 * GB)
        )
        assert not overflow.accepted
        assert overflow.reason == REASON_SERVICE_FULL

    def test_backpressure_sets_retry_after(self, server):
        client = ServiceClient(server.url)
        client.submit_ndjson(ndjson_for(make_trace(60, seed=11)))  # saturate
        request = urllib.request.Request(
            server.url + "/jobs",
            data=json.dumps(
                JobSubmission(job_id="over2", input_bytes=1 * GB).to_wire()
            ).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 429
        assert info.value.headers["Retry-After"] == "1"
        info.value.close()

    def test_advance_endpoint_validates(self, server):
        client = ServiceClient(server.url)
        assert client.advance(5.0)["clock"] == 5.0
        status, body = client._request(
            "POST", "/advance", b'{"until": "soon"}'
        )
        assert status == 400

    def test_unknown_route_is_404(self, server):
        status, _ = ServiceClient(server.url)._request("GET", "/nope")
        assert status == 404

    def test_shutdown_checkpoints_and_stops(self, tmp_path):
        service = ReproService(
            "Hybrid", checkpoint_path=str(tmp_path / "state.json")
        )
        httpd = serve(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(httpd.url)
        client.submit(JobSubmission(job_id="j", input_bytes=1 * GB))
        reply = client.shutdown()
        assert reply["checkpoint"] == str(tmp_path / "state.json")
        thread.join(timeout=5)
        assert not thread.is_alive()
        httpd.server_close()
        restored = ReproService.restore(str(tmp_path / "state.json"))
        assert restored.drain()["finished"] == 1
