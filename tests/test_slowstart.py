"""Tests for reduce slowstart and slot hoarding (the convoy mechanism)."""

import pytest

from repro.simulator import Simulation

from tests.test_jobtracker import make_cluster, make_config, make_job, make_tracker


class TestSlowstart:
    def test_slowstart_one_equals_launch_after_maps(self):
        """slowstart=1.0 reduces to the simple model: same results."""

        def run(slowstart):
            sim = Simulation()
            tracker = make_tracker(
                sim, config=make_config(reduce_slowstart=slowstart)
            )
            done = []
            tracker.submit(make_job(job_id="ss"), done.append)
            sim.run()
            return done[0]

        early = run(0.05)
        late = run(1.0)
        # An isolated job is unaffected: its reducers only wait on its own
        # maps either way, and phase timestamps are identical.
        assert early.execution_time == pytest.approx(late.execution_time)
        assert early.shuffle_phase == pytest.approx(late.shuffle_phase)

    def test_early_reducers_hold_slots(self):
        """With slowstart, a running job's reducers occupy reduce slots
        while its maps are still going — visible as a busy reduce pool
        mid-map-phase."""
        sim = Simulation()
        tracker = make_tracker(
            sim,
            cluster=make_cluster(count=2, map_slots=1, reduce_slots=1),
            config=make_config(reduce_slowstart=0.05),
        )
        tracker.submit(make_job(input_gb=2.0, job_id="holder"))
        # 2 GB = 16 maps on 2 slots: long map phase.  Run to mid-phase.
        sim.run(until=30.0)
        free_reduce = sum(tracker._free_reduce)
        assert free_reduce < tracker.cluster.total_reduce_slots

    def test_convoy_hurts_small_jobs_on_a_shared_cluster(self):
        """The Section V mechanism at workload scale: on a shared cluster
        replaying a mixed trace, early-launching reducers (slowstart 0.05)
        hold slots through long map phases and make the small-job class
        slower than polite launch-after-maps (slowstart 1.0) would."""
        import numpy as np

        from repro.core.architectures import thadoop
        from repro.core.calibration import DEFAULT_CALIBRATION
        from repro.core.deployment import Deployment
        from repro.workload.fb2009 import DAY, generate_fb2009

        trace = generate_fb2009(
            num_jobs=250, seed=42, duration=DAY * 250 / 6000
        ).shrink(5.0)
        jobs = trace.to_jobspecs()
        small_ids = {j.job_id for j in jobs if j.input_bytes < 2e9}
        assert small_ids

        def small_job_mean(slowstart):
            cal = DEFAULT_CALIBRATION.with_options(reduce_slowstart=slowstart)
            results = Deployment(thadoop(), calibration=cal).run_trace(jobs)
            return float(
                np.mean(
                    [r.execution_time for r in results if r.job_id in small_ids]
                )
            )

        assert small_job_mean(0.05) > small_job_mean(1.0)

    def test_no_deadlock_under_full_hoarding(self):
        """Reduce slots all held by waiting reducers never deadlocks:
        maps need no reduce slots, so every job's maps finish and release
        the convoy."""
        sim = Simulation()
        tracker = make_tracker(
            sim,
            cluster=make_cluster(count=2, map_slots=1, reduce_slots=1),
            config=make_config(reduce_slowstart=0.0),
        )
        results = []
        for i in range(6):
            tracker.submit(make_job(input_gb=0.5, job_id=f"j{i}"), results.append)
        sim.run()
        assert len(results) == 6

    def test_slowstart_zero_enqueues_reducers_at_submit(self):
        sim = Simulation()
        tracker = make_tracker(sim, config=make_config(reduce_slowstart=0.0))
        done = []
        tracker.submit(make_job(job_id="zero"), done.append)
        sim.run()
        assert len(done) == 1
