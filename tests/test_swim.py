"""Tests for SWIM trace-format interoperability."""

import pytest

from repro.errors import TraceError
from repro.units import GB, MB
from repro.workload.fb2009 import generate_fb2009
from repro.workload.swim import load_swim, save_swim
from repro.workload.trace import Trace, TraceJob


SAMPLE = """\
# FB-2009 sample (synthetic)
job0\t0.0\t0.0\t1048576\t524288\t1024
job1\t12.5\t12.5\t10737418240\t4294967296\t1073741824

job2\t30.0\t17.5\t2048\t0\t512
"""


class TestLoadSwim:
    def test_parses_fields(self, tmp_path):
        path = tmp_path / "fb.tsv"
        path.write_text(SAMPLE)
        trace = load_swim(path)
        assert len(trace) == 3
        job = trace.jobs[1]
        assert job.job_id == "job1"
        assert job.arrival_time == 12.5
        assert job.input_bytes == 10 * GB
        assert job.shuffle_bytes == 4 * GB
        assert job.output_bytes == 1 * GB

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "fb.tsv"
        path.write_text(SAMPLE)
        assert len(load_swim(path)) == 3

    def test_sorts_by_submit_time(self, tmp_path):
        path = tmp_path / "fb.tsv"
        path.write_text("b\t5.0\t0\t10\t0\t0\na\t1.0\t0\t10\t0\t0\n")
        trace = load_swim(path)
        assert [j.job_id for j in trace.jobs] == ["a", "b"]

    def test_rejects_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("job0\t0.0\t0.0\t100\n")
        with pytest.raises(TraceError):
            load_swim(path)

    def test_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("job0\tzero\t0\t100\t0\t0\n")
        with pytest.raises(TraceError):
            load_swim(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("# nothing\n")
        with pytest.raises(TraceError):
            load_swim(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_swim(tmp_path / "nope.tsv")


class TestRoundTrip:
    def test_roundtrip_preserves_jobs(self, tmp_path):
        original = Trace(
            [
                TraceJob("a", 0.0, 100 * MB, 40 * MB, 1 * MB),
                TraceJob("b", 7.25, 2 * GB, 0.0, 200 * MB),
            ]
        )
        path = tmp_path / "out.tsv"
        save_swim(original, path)
        loaded = load_swim(path)
        for orig, back in zip(original.jobs, loaded.jobs):
            assert back.job_id == orig.job_id
            assert back.arrival_time == pytest.approx(orig.arrival_time, abs=1e-3)
            assert back.input_bytes == pytest.approx(orig.input_bytes, abs=1.0)
            assert back.shuffle_bytes == pytest.approx(orig.shuffle_bytes, abs=1.0)

    def test_generated_trace_roundtrips(self, tmp_path):
        trace = generate_fb2009(num_jobs=50, seed=3)
        path = tmp_path / "gen.tsv"
        save_swim(trace, path)
        loaded = load_swim(path)
        assert len(loaded) == 50
        # Replayable end to end.
        jobs = loaded.to_jobspecs()
        assert jobs[0].arrival_time == pytest.approx(
            trace.jobs[0].arrival_time, abs=1e-3
        )
