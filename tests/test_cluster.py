"""Tests for machine specs, network model and cluster composition."""

import pytest

from repro.cluster import Cluster, DiskSpec, MachineSpec, NetworkModel, SlotConfig
from repro.cluster import specs
from repro.errors import ConfigurationError
from repro.units import GB, MB


def make_machine(**overrides):
    defaults = dict(
        name="test",
        cores=8,
        core_speed=1.0,
        ram=16 * GB,
        disk=DiskSpec(bandwidth=120 * MB, capacity=193 * GB),
        nic_bandwidth=1.25e9,
    )
    defaults.update(overrides)
    return MachineSpec(**defaults)


class TestDiskSpec:
    def test_valid(self):
        disk = DiskSpec(bandwidth=100.0, capacity=1000.0)
        assert disk.bandwidth == 100.0

    @pytest.mark.parametrize("kwargs", [
        dict(bandwidth=0, capacity=1),
        dict(bandwidth=1, capacity=0),
        dict(bandwidth=-5, capacity=1),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            DiskSpec(**kwargs)


class TestMachineSpec:
    def test_ramdisk_is_half_the_ram(self):
        machine = make_machine(ram=505 * GB)
        assert machine.ramdisk_capacity == 252.5 * GB

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores", 0),
            ("core_speed", 0),
            ("ram", -1),
            ("nic_bandwidth", 0),
            ("price", 0),
        ],
    )
    def test_rejects_nonpositive(self, field, value):
        with pytest.raises(ConfigurationError):
            make_machine(**{field: value})


class TestNetworkModel:
    def test_stream_cap_divides_nic(self):
        net = NetworkModel(latency=0.001, nic_bandwidth=1000.0)
        assert net.stream_cap(4) == 250.0

    def test_stream_cap_rejects_zero_streams(self):
        net = NetworkModel(latency=0.001, nic_bandwidth=1000.0)
        with pytest.raises(ConfigurationError):
            net.stream_cap(0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(latency=-1, nic_bandwidth=100.0)


class TestSlotConfig:
    def test_total(self):
        assert SlotConfig(6, 2).total == 8

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            SlotConfig(0, 2)
        with pytest.raises(ConfigurationError):
            SlotConfig(6, 0)


class TestCluster:
    def make(self, **overrides):
        defaults = dict(
            name="c",
            machine=make_machine(),
            count=12,
            slots=SlotConfig(6, 2),
            network=specs.MYRINET,
        )
        defaults.update(overrides)
        return Cluster(**defaults)

    def test_totals(self):
        cluster = self.make()
        assert cluster.total_map_slots == 72
        assert cluster.total_reduce_slots == 24
        assert cluster.total_cores == 96
        assert cluster.total_disk_capacity == 12 * 193 * GB

    def test_rejects_slot_type_exceeding_cores(self):
        with pytest.raises(ConfigurationError):
            self.make(slots=SlotConfig(9, 2))
        with pytest.raises(ConfigurationError):
            self.make(slots=SlotConfig(6, 9))

    def test_allows_overcommit_split(self):
        # 24 map + 24 reduce on a 24-core machine (the scale-up reading).
        machine = make_machine(cores=24)
        cluster = self.make(machine=machine, slots=SlotConfig(24, 24), count=2)
        assert cluster.total_map_slots == 48

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            self.make(count=0)

    def test_describe_mentions_name_and_count(self):
        text = self.make().describe()
        assert "c" in text and "12" in text


class TestPaperCatalogue:
    def test_scale_up_cluster_shape(self):
        cluster = specs.scale_up_cluster()
        assert cluster.count == 2
        assert cluster.machine.cores == 24
        assert cluster.total_map_slots == 48
        assert cluster.machine.ram == 505 * GB
        assert cluster.machine.disk.capacity == 91 * GB

    def test_scale_out_cluster_shape(self):
        cluster = specs.scale_out_cluster()
        assert cluster.count == 12
        assert cluster.machine.cores == 8
        assert cluster.total_map_slots == 72
        assert cluster.slots.total == cluster.machine.cores

    def test_equal_cost_rule(self):
        # 2 scale-up == 12 scale-out in cost, so the baseline is 24.
        assert specs.SCALE_UP_NODE.price == 6 * specs.SCALE_OUT_NODE.price
        assert specs.equal_cost_scale_out_count() == 24

    def test_myrinet_is_10gbps(self):
        assert specs.MYRINET.nic_bandwidth == pytest.approx(1.25e9)

    def test_custom_counts(self):
        assert specs.scale_up_cluster(count=4).count == 4
        assert specs.scale_out_cluster(count=24).count == 24
