"""Determinism: parallel == serial == cached, byte for byte.

The acceptance bar for the runner subsystem: a sweep run with
``max_workers=N`` must produce *byte-identical* payloads to the same
sweep run serially, and a cached re-run must reproduce them again while
performing zero simulations.  Seeds select jitter streams per cell, so
results depend only on each cell's spec — never on execution order.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import fig10_trace_replay
from repro.analysis.sweep import run_isolated, sweep_architectures
from repro.apps import GREP, WORDCOUNT
from repro.core.architectures import hybrid, out_ofs, up_hdfs, up_ofs
from repro.core.deployment import Deployment
from repro.runner.cache import ResultCache
from repro.runner.pool import PoolRunner
from repro.runner.spec import canonical_json, replay_cell, sweep_experiment
from repro.units import GB

ARCHS = (up_ofs(), up_hdfs(), out_ofs())
SIZES = (1 * GB, 2 * GB)


def payload_bytes(outcomes) -> list:
    """Each outcome's payload, canonically serialised."""
    return [canonical_json(o.payload) for o in outcomes]


class TestParallelEqualsSerial:
    def test_sweep_grid_is_byte_identical(self):
        cells = sweep_experiment(ARCHS, WORDCOUNT, SIZES).cells
        serial = PoolRunner(max_workers=1).run_cells(cells)
        parallel = PoolRunner(max_workers=2).run_cells(cells)
        assert payload_bytes(serial) == payload_bytes(parallel)

    def test_replay_is_byte_identical(self):
        cells = [replay_cell(hybrid(), num_jobs=25),
                 replay_cell(up_ofs(), num_jobs=25)]
        serial = PoolRunner(max_workers=1).run_cells(cells)
        parallel = PoolRunner(max_workers=2).run_cells(cells)
        assert payload_bytes(serial) == payload_bytes(parallel)

    def test_execution_order_does_not_matter(self):
        cells = list(sweep_experiment(ARCHS, GREP, SIZES).cells)
        runner = PoolRunner()
        forward = runner.run_cells(cells)
        backward = runner.run_cells(list(reversed(cells)))
        assert payload_bytes(forward) == payload_bytes(
            list(reversed(backward))
        )


class TestCachedEqualsFresh:
    def test_second_sweep_simulates_nothing_and_matches(self, tmp_path):
        cells = sweep_experiment(ARCHS, WORDCOUNT, SIZES).cells
        cold = PoolRunner(cache=ResultCache(tmp_path / "c"))
        first = cold.run_cells(cells)
        assert cold.last_stats.simulated == len(cells)
        warm = PoolRunner(cache=ResultCache(tmp_path / "c"))
        second = warm.run_cells(cells)
        assert warm.last_stats.simulated == 0
        assert warm.last_stats.cache_hits == len(cells)
        assert payload_bytes(first) == payload_bytes(second)

    def test_sweep_architectures_identical_with_and_without_runner(
        self, tmp_path
    ):
        bare = sweep_architectures(ARCHS, GREP, SIZES)
        runner = PoolRunner(max_workers=2, cache=ResultCache(tmp_path / "c"))
        pooled = sweep_architectures(ARCHS, GREP, SIZES, runner=runner)
        cached = sweep_architectures(ARCHS, GREP, SIZES, runner=runner)
        for name in bare:
            assert (
                bare[name].execution_times
                == pooled[name].execution_times
                == cached[name].execution_times
            )

    def test_fig10_identical_through_the_runner(self, tmp_path):
        bare = fig10_trace_replay(num_jobs=20, seed=7)
        runner = PoolRunner(max_workers=2, cache=ResultCache(tmp_path / "c"))
        pooled = fig10_trace_replay(num_jobs=20, seed=7, runner=runner)
        for name in bare:
            assert list(bare[name].scale_up_times) == list(
                pooled[name].scale_up_times
            )
            assert list(bare[name].scale_out_times) == list(
                pooled[name].scale_out_times
            )


class TestSeedSemantics:
    """The satellite bugfix: seeds thread through to the jitter streams."""

    def test_same_seed_same_result(self):
        a = run_isolated(up_ofs(), WORDCOUNT, 2 * GB, seed=11)
        b = run_isolated(up_ofs(), WORDCOUNT, 2 * GB, seed=11)
        assert a.execution_time == b.execution_time

    def test_different_seeds_differ(self):
        times = {
            run_isolated(up_ofs(), WORDCOUNT, 2 * GB, seed=s).execution_time
            for s in (1, 2, 3)
        }
        assert len(times) > 1, "seeds must select distinct jitter streams"

    def test_seed_zero_is_the_legacy_result(self):
        """Seed 0 must keep the historical job id — and therefore the
        historical jitter stream — so every default figure is unchanged."""
        via_runner = run_isolated(up_ofs(), WORDCOUNT, 2 * GB, seed=0)
        legacy = Deployment(up_ofs()).run_job(
            WORDCOUNT.make_job(2 * GB), register_dataset=True
        )
        assert via_runner.execution_time == legacy.execution_time
        assert via_runner.map_phase == legacy.map_phase

    def test_sweep_threads_seed_through(self):
        grid_a = sweep_architectures([up_ofs()], WORDCOUNT, [2 * GB], seed=5)
        grid_b = sweep_architectures([up_ofs()], WORDCOUNT, [2 * GB], seed=6)
        assert (
            grid_a["up-OFS"].execution_times
            != grid_b["up-OFS"].execution_times
        )
