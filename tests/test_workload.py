"""Tests for the workload substrate: CDFs, traces, FB-2009 generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, TraceError
from repro.units import GB, KB, MB, TB
from repro.workload import (
    Trace,
    TraceJob,
    cdf_at,
    empirical_cdf,
    generate_fb2009,
    quantile,
)
from repro.workload.arrivals import poisson_arrivals, uniform_arrivals
from repro.workload.fb2009 import FB2009Generator, segment_shares
from repro.workload.trace import merge_traces


class TestCDF:
    def test_empirical_cdf_steps(self):
        x, p = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(p) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_at_points(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert list(cdf_at(values, [0.5, 2.0, 10.0])) == pytest.approx(
            [0.0, 0.5, 1.0]
        )

    def test_quantile_inverts_cdf(self):
        values = list(range(1, 101))
        assert quantile(values, 0.5)[0] == 50
        assert quantile(values, [0.0, 1.0]).tolist() == [1, 100]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf([])
        with pytest.raises(ConfigurationError):
            quantile([], 0.5)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            quantile([1.0], 1.5)

    @given(st.lists(st.floats(min_value=0, max_value=1e12), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_cdf_is_monotone_and_bounded(self, values):
        x, p = empirical_cdf(values)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(p) > 0)
        assert p[-1] == pytest.approx(1.0)
        probe = cdf_at(values, [min(values) - 1, max(values) + 1])
        assert probe[0] == 0.0 and probe[1] == 1.0


class TestArrivals:
    def test_poisson_fills_window(self):
        rng = np.random.default_rng(1)
        times = poisson_arrivals(100, 1000.0, rng)
        assert len(times) == 100
        assert np.all(np.diff(times) >= 0)
        assert times[-1] < 1000.0
        assert times[0] >= 0.0

    def test_uniform_deterministic(self):
        times = uniform_arrivals(4, 100.0)
        assert list(times) == [0.0, 25.0, 50.0, 75.0]

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(0, 100.0, rng)
        with pytest.raises(ConfigurationError):
            uniform_arrivals(5, 0.0)


def make_trace():
    jobs = [
        TraceJob("a", 0.0, 10 * GB, 5 * GB, 1 * GB),
        TraceJob("b", 5.0, 100 * MB, 0.0, 10 * MB),
    ]
    return Trace(jobs, {"name": "test"})


class TestTrace:
    def test_shrink_divides_sizes_not_times(self):
        shrunk = make_trace().shrink(5.0)
        assert shrunk.jobs[0].input_bytes == pytest.approx(2 * GB)
        assert shrunk.jobs[0].shuffle_bytes == pytest.approx(1 * GB)
        assert shrunk.jobs[0].arrival_time == 0.0
        assert shrunk.metadata["shrink_factor"] == 5.0

    def test_shrink_composes(self):
        twice = make_trace().shrink(5.0).shrink(2.0)
        assert twice.metadata["shrink_factor"] == 10.0

    def test_compress_time(self):
        fast = make_trace().compress_time(5.0)
        assert fast.jobs[1].arrival_time == pytest.approx(1.0)
        assert fast.jobs[1].input_bytes == 100 * MB

    def test_ratio_preserved_by_shrink(self):
        original = make_trace()
        shrunk = original.shrink(7.0)
        assert shrunk.jobs[0].shuffle_input_ratio == pytest.approx(
            original.jobs[0].shuffle_input_ratio
        )

    def test_head(self):
        assert len(make_trace().head(1)) == 1
        assert len(make_trace().head(10)) == 2

    def test_to_jobspecs(self):
        specs = make_trace().to_jobspecs()
        assert specs[0].input_bytes == 10 * GB
        assert specs[0].arrival_time == 0.0
        assert specs[1].job_id == "b"

    def test_roundtrip_json(self, tmp_path):
        path = tmp_path / "trace.json"
        original = make_trace()
        original.save(path)
        loaded = Trace.load(path)
        assert loaded.jobs == original.jobs
        assert loaded.metadata["name"] == "test"

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceError):
            Trace.load(path)
        path.write_text('{"jobs": [{"nope": 1}]}')
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_validation(self):
        with pytest.raises(TraceError):
            Trace([])
        out_of_order = [
            TraceJob("a", 10.0, 1.0, 0.0, 0.0),
            TraceJob("b", 5.0, 1.0, 0.0, 0.0),
        ]
        with pytest.raises(TraceError):
            Trace(out_of_order)
        duplicates = [
            TraceJob("a", 0.0, 1.0, 0.0, 0.0),
            TraceJob("a", 1.0, 1.0, 0.0, 0.0),
        ]
        with pytest.raises(TraceError):
            Trace(duplicates)

    def test_merge_traces(self):
        t1 = Trace([TraceJob("x", 1.0, 1.0, 0.0, 0.0)])
        t2 = Trace([TraceJob("y", 0.5, 1.0, 0.0, 0.0)])
        merged = merge_traces([t1, t2])
        assert [j.job_id for j in merged.jobs] == ["y", "x"]

    def test_job_validation(self):
        with pytest.raises(TraceError):
            TraceJob("bad", -1.0, 1.0, 0.0, 0.0)
        with pytest.raises(TraceError):
            TraceJob("bad", 0.0, -1.0, 0.0, 0.0)


class TestFB2009:
    def test_marginals_match_fig3(self):
        """40% < 1MB, 49% in 1MB..30GB, 11% > 30GB (sampling tolerance)."""
        trace = generate_fb2009(num_jobs=6000, seed=2009)
        small, median, large = segment_shares(trace)
        assert small == pytest.approx(0.40, abs=0.03)
        assert median == pytest.approx(0.49, abs=0.03)
        assert large == pytest.approx(0.11, abs=0.02)

    def test_over_80_percent_below_10gb(self):
        """Section V: 'more than 80% of jobs have an input data size less
        than 10GB'."""
        trace = generate_fb2009(num_jobs=6000, seed=2009)
        sizes = np.asarray(trace.input_sizes())
        assert np.mean(sizes < 10 * GB) > 0.80

    def test_sizes_span_kb_to_tb(self):
        trace = generate_fb2009(num_jobs=6000, seed=2009)
        sizes = np.asarray(trace.input_sizes())
        assert sizes.min() < 10 * KB
        assert sizes.max() > 0.5 * TB

    def test_deterministic_per_seed(self):
        a = generate_fb2009(num_jobs=100, seed=7)
        b = generate_fb2009(num_jobs=100, seed=7)
        assert a.jobs == b.jobs

    def test_seeds_differ(self):
        a = generate_fb2009(num_jobs=100, seed=7)
        b = generate_fb2009(num_jobs=100, seed=8)
        assert a.jobs != b.jobs

    def test_sorted_by_arrival_with_stable_ids(self):
        trace = generate_fb2009(num_jobs=500, seed=3)
        times = [j.arrival_time for j in trace.jobs]
        assert times == sorted(times)
        assert trace.jobs[0].job_id == "fb2009-00000"

    def test_job_classes_produce_map_only_jobs(self):
        trace = generate_fb2009(num_jobs=2000, seed=11)
        ratios = [j.shuffle_input_ratio for j in trace.jobs]
        assert any(r == 0.0 for r in ratios)  # map-only class
        assert any(r > 1.2 for r in ratios)  # expanding class

    def test_duration_bounds_arrivals(self):
        trace = FB2009Generator(num_jobs=200, duration=3600.0, seed=1).generate()
        assert trace.jobs[-1].arrival_time < 3600.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FB2009Generator(num_jobs=0)
        with pytest.raises(ConfigurationError):
            FB2009Generator(duration=-1.0)
