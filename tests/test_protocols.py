"""Protocol-conformance tests for the typed scheduling/routing API.

`Scheduler` and `Router` are runtime-checkable :class:`typing.Protocol`
classes: anything with the right shape conforms, including plain
functions for `Router`.  These tests pin the shipped implementations to
those shapes so the protocols stay honest interfaces, not decoration.
"""

from repro import Router, Scheduler
from repro.core.api import Router as CoreRouter, Scheduler as CoreScheduler
from repro.core.architectures import hybrid
from repro.core.deployment import Deployment, algorithm1_router
from repro.core.finegrained import InterpolatingScheduler
from repro.core.loadbalance import LoadBalancingRouter
from repro.core.scheduler import Decision, SizeAwareScheduler
from repro.units import GB
from repro.workload.fb2009 import generate_fb2009


class TestSchedulerProtocol:
    def test_size_aware_scheduler_conforms(self):
        assert isinstance(SizeAwareScheduler(), Scheduler)

    def test_interpolating_scheduler_conforms(self):
        assert isinstance(InterpolatingScheduler(), Scheduler)

    def test_shapeless_object_does_not_conform(self):
        class NotAScheduler:
            pass

        assert not isinstance(NotAScheduler(), Scheduler)

    def test_custom_class_conforms_structurally(self):
        class AlwaysUp:
            def decide_job(self, spec, ratio_known=True):
                return Decision.SCALE_UP

        assert isinstance(AlwaysUp(), Scheduler)
        # And is usable where the API expects a Scheduler.
        router = algorithm1_router(AlwaysUp())
        deployment = Deployment(hybrid(), router=router)
        job = generate_fb2009(num_jobs=1, seed=3).to_jobspecs()[0]
        assert router(job, deployment) == deployment.spec.role_index("up")


class TestRouterProtocol:
    def test_algorithm1_router_conforms(self):
        assert isinstance(algorithm1_router(), Router)

    def test_load_balancing_router_conforms(self):
        assert isinstance(LoadBalancingRouter(), Router)

    def test_plain_function_conforms(self):
        def pin_to_first(job, deployment):
            return 0

        assert isinstance(pin_to_first, Router)
        deployment = Deployment(hybrid(), router=pin_to_first)
        assert deployment.router is pin_to_first

    def test_deployment_default_router_conforms(self):
        assert isinstance(Deployment(hybrid()).router, Router)


class TestExports:
    def test_protocols_exported_from_package_root(self):
        assert Scheduler is CoreScheduler
        assert Router is CoreRouter

    def test_load_balancer_uses_protocol_typed_scheduler(self):
        router = LoadBalancingRouter()
        assert isinstance(router.scheduler, Scheduler)

    def test_end_to_end_with_custom_router(self):
        """A protocol-conforming router drives a real hybrid run."""
        decisions = []

        def recording_router(job, deployment):
            index = algorithm1_router()(job, deployment)
            decisions.append((job.job_id, index))
            return index

        deployment = Deployment(
            hybrid(), router=recording_router, register_datasets=True
        )
        from repro.apps import WORDCOUNT

        result = deployment.run_job(WORDCOUNT.make_job(4 * GB))
        assert result.cluster == "scale-up"
        assert len(decisions) == 1
