"""Tests for the resilience experiment and its CLI command.

The load-bearing contract: the report is deterministic across serial,
parallel and warm-cache execution, because the fault plan hashes into
each cell's content key and injection draws no randomness of its own.
"""

import dataclasses

import pytest

from repro.cli import main
from repro.analysis.resilience import (
    ResilienceReport,
    render_resilience,
    resilience_experiment,
)
from repro.faults import FaultEvent, FaultPlan, NODE_CRASH, default_resilience_plan
from repro.runner import PoolRunner, ResultCache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep every run's result cache out of the repo tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


JOBS = 24


def report_dict(report: ResilienceReport) -> dict:
    return {
        name: dataclasses.asdict(arch)
        for name, arch in report.architectures.items()
    }


class TestExperiment:
    def test_report_shape(self):
        report = resilience_experiment(num_jobs=JOBS)
        assert set(report.architectures) == {"Hybrid", "THadoop", "RHadoop"}
        for arch in report.architectures.values():
            assert arch.total == JOBS
            assert arch.faults["injected_events"] >= 1
        assert not report.plan.is_empty

    def test_serial_parallel_warm_cache_identical(self, tmp_path):
        serial = resilience_experiment(num_jobs=JOBS)
        parallel = resilience_experiment(
            num_jobs=JOBS,
            runner=PoolRunner(max_workers=2, cache=ResultCache(tmp_path / "c")),
        )
        warm = resilience_experiment(
            num_jobs=JOBS,
            runner=PoolRunner(max_workers=2, cache=ResultCache(tmp_path / "c")),
        )
        assert report_dict(serial) == report_dict(parallel)
        assert report_dict(parallel) == report_dict(warm)

    def test_fault_seed_changes_plan_not_workload(self):
        a = resilience_experiment(num_jobs=JOBS, fault_seed=1)
        b = resilience_experiment(num_jobs=JOBS, fault_seed=2)
        assert a.plan != b.plan
        assert a.num_jobs == b.num_jobs == JOBS

    def test_explicit_plan_is_used(self):
        plan = FaultPlan(
            events=(FaultEvent(time=5.0, kind=NODE_CRASH, member="out", node=0),),
            name="one-crash",
        )
        report = resilience_experiment(num_jobs=JOBS, fault_plan=plan)
        assert report.plan is plan
        assert all(
            arch.faults["nodes_crashed"] == 1
            for arch in report.architectures.values()
        )

    def test_render_mentions_every_architecture(self):
        report = resilience_experiment(num_jobs=JOBS)
        text = render_resilience(report)
        for name in ("Hybrid", "THadoop", "RHadoop"):
            assert name in text
        assert "faults injected" in text
        assert "plan events:" in text


class TestCli:
    def test_resilience_command(self, capsys, tmp_path):
        from repro.workload.fb2009 import DAY

        plan_file = tmp_path / "plan.json"
        assert main([
            "resilience", "--jobs", str(JOBS),
            "--save-plan", str(plan_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "Resilience:" in out
        assert "THadoop" in out
        saved = FaultPlan.load(plan_file)
        assert saved == default_resilience_plan(DAY * JOBS / 6000.0, seed=0)

    def test_resilience_with_plan_file(self, capsys, tmp_path):
        plan = FaultPlan(
            events=(FaultEvent(time=5.0, kind=NODE_CRASH, member="out", node=1),),
            name="from-file",
        )
        path = plan.save(tmp_path / "p.json")
        assert main(["resilience", "--jobs", str(JOBS), "--faults", str(path)]) == 0
        assert "from-file" in capsys.readouterr().out

    def test_replay_accepts_faults(self, capsys, tmp_path):
        path = default_resilience_plan(300.0, seed=0).save(tmp_path / "p.json")
        assert main([
            "replay", "--jobs", str(JOBS), "--faults", str(path),
        ]) == 0
        assert "failed jobs:" in capsys.readouterr().out

    def test_malformed_plan_is_a_one_line_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(["resilience", "--faults", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_debug_reraises(self, tmp_path):
        from repro.errors import FaultError

        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(FaultError):
            main(["--debug", "resilience", "--faults", str(bad)])

    def test_cache_explains_holes(self, capsys):
        # An infeasible sweep cell (up-HDFS beyond its capacity) leaves a
        # hole; `repro cache` must say why.
        assert main([
            "sweep", "--app", "wordcount", "--sizes", "128GB",
        ]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "infeasible holes" in out
        assert "CapacityError" in out
