"""Elastic membership, degradation and chaos (repro.elastic; docs/ELASTIC.md).

The contracts pinned here:

* **plans** — :class:`ScalePlan` round-trips, validates, and hashes like
  a :class:`FaultPlan`; an *empty* plan is byte-identical to no plan at
  all, and normalises away in :class:`CellSpec` cache keys;
* **drain vs crash** — a graceful decommission lets running attempts
  finish and only then retires the node; a crash mid-drain wins (the
  drain cancels, attempts requeue); a recover mid-drain cancels the
  drain and keeps the node;
* **chaos invariants** — every seeded churn scenario completes with no
  job lost and none double-completed, deterministically;
* **autoscaling** — the threshold controller is deterministic, bounded,
  cooldown-limited, and a quiescent autoscaler perturbs nothing;
* **brownout** — watermark levels, admission shedding with typed
  reasons, tuner suspension while unhealthy;
* **durability** — kill/restore mid-churn replays byte-identically, and
  the generational checkpoint store degrades to older intact snapshots.
"""

from __future__ import annotations

import json

import pytest

from repro.core.api import JobSubmission
from repro.core.architectures import hybrid, rhadoop
from repro.core.deployment import Deployment
from repro.elastic import (
    CHAOS_SCENARIOS,
    BrownoutConfig,
    HEALTH_BROWNED_OUT,
    HEALTH_DEGRADED,
    HEALTH_OK,
    NODE_DECOMMISSION,
    NODE_JOIN,
    OFS_SERVER_ADD,
    ScaleEvent,
    ScalePlan,
    ThresholdAutoscaler,
    check_invariants,
    default_elastic_plan,
    run_chaos,
)
from repro.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    ElasticError,
    ServiceError,
)
from repro.faults import NODE_CRASH, NODE_RECOVER, FaultEvent, FaultPlan
from repro.runner.spec import replay_cell
from repro.service import (
    CheckpointStore,
    REASON_SHED_BROWNED_OUT,
    REASON_SHED_DEGRADED,
    ReproService,
)
from repro.simulator import Simulation
from repro.tune.tuner import Tuner
from repro.tune.window import Observation
from repro.units import GB

from tests.test_jobtracker import make_job, make_tracker
from tests.test_service import make_trace, results_bytes, submissions_for


class TestScalePlan:
    def test_events_sorted_by_time(self):
        plan = ScalePlan(events=(
            ScaleEvent(time=9.0, kind=NODE_JOIN),
            ScaleEvent(time=2.0, kind=NODE_DECOMMISSION, node=1),
        ))
        assert [e.time for e in plan.events] == [2.0, 9.0]

    def test_validation(self):
        with pytest.raises(ElasticError):
            ScaleEvent(time=-1.0, kind=NODE_JOIN)
        with pytest.raises(ElasticError):
            ScaleEvent(time=0.0, kind="teleport")
        with pytest.raises(ElasticError):
            ScaleEvent(time=0.0, kind=NODE_DECOMMISSION, node=-1)
        with pytest.raises(ElasticError):
            ScaleEvent(time=0.0, kind=NODE_JOIN, count=0)

    def test_round_trip(self, tmp_path):
        plan = default_elastic_plan(1000.0, seed=3)
        again = ScalePlan.from_dict(plan.to_dict())
        assert again == plan
        path = plan.save(tmp_path / "plan.json")
        assert ScalePlan.load(path) == plan
        assert ScalePlan.load(path).content_key() == plan.content_key()

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ElasticError):
            ScalePlan.load(bad)
        with pytest.raises(ElasticError):
            ScalePlan.load(tmp_path / "missing.json")
        with pytest.raises(ElasticError):
            ScalePlan.from_dict({"schema": 99, "events": []})

    def test_content_key_sees_every_field(self):
        base = ScalePlan(events=(ScaleEvent(time=1.0, kind=NODE_JOIN),))
        moved = ScalePlan(events=(ScaleEvent(time=2.0, kind=NODE_JOIN),))
        renamed = ScalePlan(
            events=(ScaleEvent(time=1.0, kind=NODE_JOIN),), name="x"
        )
        keys = {base.content_key(), moved.content_key(), renamed.content_key()}
        assert len(keys) == 3

    def test_generators_are_seeded(self):
        assert default_elastic_plan(500.0, seed=1) == default_elastic_plan(500.0, seed=1)
        assert default_elastic_plan(500.0, seed=1) != default_elastic_plan(500.0, seed=2)

    def test_cell_spec_hashes_the_plan(self):
        plan = default_elastic_plan(100.0)
        static = replay_cell(rhadoop(), num_jobs=5)
        explicit_empty = replay_cell(
            rhadoop(), num_jobs=5, scale_plan=ScalePlan.empty()
        )
        elastic = replay_cell(rhadoop(), num_jobs=5, scale_plan=plan)
        # Empty plan normalises away: one cache identity for "static".
        assert explicit_empty.content_key() == static.content_key()
        assert elastic.content_key() != static.content_key()
        assert "scale events" in elastic.describe()


class TestEmptyPlanIdentity:
    def test_empty_plan_is_byte_identical_to_no_plan(self):
        jobs = make_trace(20).to_jobspecs()
        plain = Deployment(hybrid()).run_trace(jobs)
        empty = Deployment(
            hybrid(), scale_plan=ScalePlan.empty()
        ).run_trace(jobs)
        # A brownout config with no transitions is a pure observer too.
        observed = Deployment(
            hybrid(), brownout=BrownoutConfig()
        ).run_trace(jobs)
        assert results_bytes(plain) == results_bytes(empty)
        assert results_bytes(plain) == results_bytes(observed)


class TestDecommission:
    def test_idle_node_retires_immediately(self):
        sim = Simulation()
        tracker = make_tracker(sim)
        left = []
        tracker.on_decommissioned = left.append
        assert tracker.decommission_node(1)
        assert tracker.nodes_decommissioned == 1
        assert left == [1]
        assert tracker.schedulable_nodes() == 1
        assert tracker.intended_nodes == 1
        # Retirement is final: no re-drain, no recover.
        assert not tracker.decommission_node(1)
        tracker.recover_node(1)
        assert tracker.schedulable_nodes() == 1

    def test_busy_node_drains_then_retires(self):
        sim = Simulation()
        tracker = make_tracker(sim)
        done = []
        tracker.submit(make_job(input_gb=1.0), done.append)
        sim.schedule_at(3.0, lambda: tracker.decommission_node(1))
        sim.run()
        assert len(done) == 1 and not done[0].failed  # attempts finished
        assert tracker.nodes_decommissioned == 1
        assert tracker.schedulable_nodes() == 1
        # The capacity series sampled the drain: 2 nodes, then 1.
        counts = [count for _, count in tracker.capacity_series]
        assert counts[0] == 2 and counts[-1] == 1

    def test_crash_wins_over_drain(self):
        sim = Simulation()
        tracker = make_tracker(sim)
        done = []
        tracker.submit(make_job(input_gb=1.0), done.append)
        sim.schedule_at(3.0, lambda: tracker.decommission_node(1))
        sim.schedule_at(3.5, lambda: tracker.crash_node(1))
        sim.run()
        assert len(done) == 1 and not done[0].failed  # survivor carried it
        assert tracker.nodes_crashed == 1
        assert tracker.nodes_decommissioned == 0  # the drain was cancelled
        # A crashed node is missing, not retired: it may recover.
        tracker.recover_node(1)
        assert tracker._node_ok(1)
        assert tracker.schedulable_nodes() == 2

    def test_recover_cancels_drain(self):
        sim = Simulation()
        tracker = make_tracker(sim)
        done = []
        tracker.submit(make_job(input_gb=1.0), done.append)
        sim.schedule_at(3.0, lambda: tracker.decommission_node(1))
        sim.schedule_at(3.5, lambda: tracker.recover_node(1))
        sim.run()
        assert len(done) == 1 and not done[0].failed
        assert tracker.nodes_decommissioned == 0
        assert tracker._node_ok(1)
        assert tracker.schedulable_nodes() == 2


class TestDeploymentElastic:
    def test_add_node_grows_capacity(self):
        deployment = Deployment(rhadoop())
        before = deployment.intended_nodes()
        index = deployment.add_node(0)
        assert index == before  # joins append at the next free index
        assert deployment.intended_nodes() == before + 1
        assert deployment.healthy_fraction() == 1.0
        with pytest.raises(ConfigurationError):
            deployment.add_node(5)

    def test_fault_summary_has_capacity_series(self):
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind=NODE_CRASH, member="out", node=0),
        ))
        deployment = Deployment(rhadoop(), fault_plan=plan)
        deployment.run_trace(make_trace(10).to_jobspecs())
        summary = deployment.fault_summary()
        series = summary["healthy_capacity"]
        assert len(series) == 1
        values = next(iter(series.values()))
        assert values[0] == [0.0, 24]
        assert any(count == 23 for _, count in values)
        assert summary["nodes_crashed"] == 1
        assert summary["scale_events_applied"] == 0

    def test_elastic_summary_counts_plan_actions(self):
        plan = ScalePlan(events=(
            ScaleEvent(time=1.0, kind=NODE_JOIN, member="out"),
            ScaleEvent(time=2.0, kind=NODE_DECOMMISSION, member="up", node=0),
            ScaleEvent(time=3.0, kind=OFS_SERVER_ADD, count=1),
        ))
        deployment = Deployment(rhadoop(), scale_plan=plan)
        deployment.run_trace(make_trace(10).to_jobspecs())
        summary = deployment.elastic_summary()
        # The join and the OFS add apply; RHadoop has no "up" member.
        assert summary["scale_plan"]["applied"] == 2
        assert summary["scale_plan"]["skipped"] == 1
        assert summary["nodes_joined"] == 1
        assert summary["health"] == HEALTH_OK


class TestChaosScenarios:
    @pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
    def test_invariants_hold(self, name):
        report = run_chaos(name, num_jobs=25)
        assert report.ok, report.violations
        assert report.completed + report.failed == 25
        assert report.makespan > 0

    def test_chaos_is_deterministic(self):
        first = run_chaos("flapping_node", num_jobs=25)
        second = run_chaos("flapping_node", num_jobs=25)
        assert first.makespan == second.makespan
        assert first.completed == second.completed
        assert first.faults == second.faults
        assert first.elastic == second.elastic

    def test_check_invariants_flags_loss_and_duplicates(self):
        class R:
            def __init__(self, job_id):
                self.job_id = job_id

        violations = check_invariants(
            ["a", "b", "c"], [R("a"), R("a"), R("x")]
        )
        text = "\n".join(violations)
        assert "double-completed" in text
        assert "lost" in text and "b" in text and "c" in text
        assert "unknown" in text


class TestAutoscaler:
    def churn(self, num_jobs=40):
        duration = 86400.0 * num_jobs / 6000.0 / 6.0
        trace = make_trace(num_jobs)
        plan = FaultPlan(tuple(
            FaultEvent(time=duration * 0.10 + 15.0 * i, kind=NODE_CRASH,
                       member="out", node=11 - i)
            for i in range(6)
        ))
        return trace.to_jobspecs(), plan

    def controller(self):
        return ThresholdAutoscaler(
            min_nodes=12, max_nodes=26, scale_up_backlog=0.5,
            cooldown=45.0, step=2,
        )

    def test_validation(self):
        with pytest.raises(ElasticError):
            ThresholdAutoscaler(min_nodes=0)
        with pytest.raises(ElasticError):
            ThresholdAutoscaler(min_nodes=4, max_nodes=2)
        with pytest.raises(ElasticError):
            ThresholdAutoscaler(scale_up_backlog=1.0, scale_down_backlog=2.0)
        with pytest.raises(ElasticError):
            ThresholdAutoscaler(cooldown=-1.0)
        with pytest.raises(ElasticError):
            ThresholdAutoscaler(step=0)
        with pytest.raises(ElasticError):
            ThresholdAutoscaler(tick_period=0.0)

    def test_deterministic_and_bounded(self):
        jobs, plan = self.churn()
        runs = []
        for _ in range(2):
            scaler = self.controller()
            deployment = Deployment(
                rhadoop(), fault_plan=plan, autoscaler=scaler
            )
            results = deployment.run_trace(jobs)
            deployment.fail_unfinished()
            runs.append((results_bytes(results), scaler.actions))
            assert scaler.scale_ups > 0  # the controller actually acted
            assert deployment.trackers[0].schedulable_nodes() <= 26
            # Cooldown: consecutive actions are spaced apart.
            times = [t for t, _, _ in scaler.actions]
            assert all(b - a >= 45.0 for a, b in zip(times, times[1:]))
        assert runs[0] == runs[1]

    def test_quiescent_autoscaler_perturbs_nothing(self):
        jobs = make_trace(20).to_jobspecs()
        plain = Deployment(rhadoop()).run_trace(jobs)
        idle = ThresholdAutoscaler(
            min_nodes=24, max_nodes=24, scale_up_backlog=1e9,
        )
        ticked = Deployment(rhadoop(), autoscaler=idle).run_trace(jobs)
        assert results_bytes(plain) == results_bytes(ticked)
        assert idle.actions == []


class DummyTuner:
    def __init__(self):
        self.calls = []

    def suspend(self):
        self.calls.append("suspend")

    def resume(self):
        self.calls.append("resume")


class TestBrownout:
    def test_config_validation(self):
        with pytest.raises(ElasticError):
            BrownoutConfig(degraded_below=0.4, browned_out_below=0.5)
        with pytest.raises(ElasticError):
            BrownoutConfig(degraded_below=1.5)
        with pytest.raises(ElasticError):
            BrownoutConfig(degraded_shed_shuffle_over=-1.0)

    def test_levels_and_thresholds(self):
        config = BrownoutConfig()
        assert config.level_for(1.0) == HEALTH_OK
        assert config.level_for(0.75) == HEALTH_OK  # strict comparison
        assert config.level_for(0.6) == HEALTH_DEGRADED
        assert config.level_for(0.4) == HEALTH_BROWNED_OUT
        assert config.shed_threshold(HEALTH_OK) is None
        assert config.shed_threshold(HEALTH_DEGRADED) == 32e9
        assert config.shed_threshold(HEALTH_BROWNED_OUT) == 4e9

    def test_transitions_suspend_and_resume_the_tuner(self):
        deployment = Deployment(rhadoop(), brownout=BrownoutConfig())
        deployment.tuner = DummyTuner()
        tracker = deployment.trackers[0]
        for node in range(7):  # 17/24 < 0.75: degraded
            tracker.crash_node(node)
        deployment._refresh_health()
        assert deployment.health_level() == HEALTH_DEGRADED
        assert deployment.tuner.calls == ["suspend"]
        for node in range(7, 13):  # 11/24 < 0.5: browned out
            tracker.crash_node(node)
        deployment._refresh_health()
        assert deployment.health_level() == HEALTH_BROWNED_OUT
        assert deployment.tuner.calls == ["suspend", "suspend"]
        for node in range(13):
            tracker.recover_node(node)
        deployment._refresh_health()
        assert deployment.health_level() == HEALTH_OK
        assert deployment.tuner.calls == ["suspend", "suspend", "resume"]

    def test_tuner_suspension_drops_observations(self):
        tuner = Tuner()
        tuner.suspend()
        tuner.suspend()  # idempotent: one suspension, not two
        tuner.observe(None, None, None, 0)  # dropped before any access
        assert tuner.observations == 0
        summary = tuner.summary()
        assert summary["suspended"] is True
        assert summary["suspensions"] == 1
        assert summary["observations_dropped"] == 1
        tuner.resume()
        assert tuner.summary()["suspended"] is False

    def test_observation_validates_queue_wait(self):
        with pytest.raises(ConfigurationError):
            Observation(
                job=make_job(), member=0, role="out",
                runtime=1.0, queue_wait=-0.5,
            )

    def crash_plan(self, nodes):
        return FaultPlan(tuple(
            FaultEvent(time=1.0 + i, kind=NODE_CRASH, member="out", node=i)
            for i in range(nodes)
        ))

    def test_service_sheds_degraded(self):
        service = ReproService(
            "RHadoop",
            fault_plan=self.crash_plan(7),  # 17/24: degraded
            brownout=BrownoutConfig(degraded_shed_shuffle_over=1 * GB),
        )
        service.advance_until(20.0)
        assert service.health()["status"] == HEALTH_DEGRADED
        big = service.submit(JobSubmission(
            job_id="big", input_bytes=1 * GB, shuffle_bytes=2 * GB,
        ))
        assert not big.accepted
        assert big.reason == REASON_SHED_DEGRADED
        small = service.submit(JobSubmission(
            job_id="small", input_bytes=1 * GB, shuffle_bytes=0.5 * GB,
        ))
        assert small.accepted
        dump = service.metrics_dump()
        assert dump["service"]["rejected"] == 1
        assert dump["metrics"][
            f"service.admission.rejected.{REASON_SHED_DEGRADED}"
        ] == 1
        assert dump["elastic"]["health"] == HEALTH_DEGRADED

    def test_service_sheds_browned_out(self):
        service = ReproService(
            "RHadoop",
            fault_plan=self.crash_plan(12),  # 12/24 < 0.75 = both marks
            brownout=BrownoutConfig(
                degraded_below=0.75,
                browned_out_below=0.75,
                browned_out_shed_shuffle_over=1 * GB,
            ),
        )
        service.advance_until(20.0)
        assert service.health()["status"] == HEALTH_BROWNED_OUT
        status = service.submit(JobSubmission(
            job_id="big", input_bytes=1 * GB, shuffle_bytes=2 * GB,
        ))
        assert not status.accepted
        assert status.reason == REASON_SHED_BROWNED_OUT


class TestDurabilityUnderChurn:
    def churn_plans(self):
        scale = ScalePlan(events=(
            ScaleEvent(time=30.0, kind=NODE_DECOMMISSION, member="out", node=11),
            ScaleEvent(time=90.0, kind=NODE_JOIN, member="out"),
        ))
        faults = FaultPlan(events=(
            FaultEvent(time=50.0, kind=NODE_CRASH, member="out", node=3),
            FaultEvent(time=80.0, kind=NODE_RECOVER, member="out", node=3),
        ))
        return scale, faults

    def test_kill_restore_mid_churn_is_byte_identical(self, tmp_path):
        trace = make_trace(40)
        scale, faults = self.churn_plans()
        reference = Deployment(
            hybrid(), fault_plan=faults, scale_plan=scale
        ).run_trace(trace.to_jobspecs())

        path = str(tmp_path / "state.json")
        service = ReproService(
            "Hybrid", checkpoint_path=path,
            fault_plan=faults, scale_plan=scale,
        )
        for sub in submissions_for(trace):
            assert service.submit(sub).accepted
        service.advance_until(60.0)  # mid-churn: drained + crashed, not yet recovered
        assert 0 < len(service.results) < 40
        service.checkpoint()
        del service  # the crash

        restored = ReproService.restore(
            path, fault_plan=faults, scale_plan=scale
        )
        summary = restored.drain()
        assert summary["accepted"] == summary["finished"] == 40
        assert check_invariants(
            [job.job_id for job in trace.jobs], restored.results
        ) == []
        assert results_bytes(restored.results) == results_bytes(reference)


class TestCheckpointStore:
    def states(self, tmp_path, count):
        """Distinct, valid ServiceStates (one per admitted job)."""
        service = ReproService("Hybrid")
        states = []
        for i in range(count):
            service.submit(JobSubmission(job_id=f"j{i}", input_bytes=1 * GB))
            states.append(service.state())
        return states

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ServiceError):
            CheckpointStore(tmp_path / "s.json", keep=0)

    def test_rotation_keeps_last_n(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json", keep=3)
        states = self.states(tmp_path, 4)
        for state in states:
            store.save(state)
        paths = store.generations()
        assert all(p.exists() for p in paths)
        assert not (tmp_path / "s.json.3").exists()  # oldest fell off
        # Newest-first: path holds state 4, path.1 state 3, path.2 state 2.
        for path, state in zip(paths, reversed(states[1:])):
            assert json.loads(path.read_text()) == state.to_wire()
        loaded = store.load()
        assert loaded is not None
        assert loaded.to_wire() == states[-1].to_wire()

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json", keep=3)
        states = self.states(tmp_path, 2)
        for state in states:
            store.save(state)
        (tmp_path / "s.json").write_text("{torn write")
        loaded = store.load()
        assert loaded is not None
        assert loaded.to_wire() == states[0].to_wire()

    def test_all_corrupt_raises_typed_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json", keep=2)
        (tmp_path / "s.json").write_text("{torn")
        (tmp_path / "s.json.1").write_text("also torn")
        with pytest.raises(CheckpointCorruptError, match="corrupt"):
            store.load()
        assert issubclass(CheckpointCorruptError, ServiceError)

    def test_no_snapshots_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "s.json").load() is None
