"""Cell identity: canonical serialisation, content keys, picklability."""

from __future__ import annotations

import pickle

import pytest

from repro.apps import GREP, WORDCOUNT
from repro.core.architectures import hybrid, out_ofs, up_hdfs, up_ofs
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.errors import ConfigurationError
from repro.runner.spec import (
    CODE_SALT,
    CellSpec,
    canonical_json,
    isolated_cell,
    replay_cell,
    sweep_experiment,
)
from repro.units import GB


class TestContentKey:
    def test_key_is_sha256_hex(self):
        key = isolated_cell(up_ofs(), GREP, 1 * GB).content_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_key_is_stable_across_instances(self):
        a = isolated_cell(up_ofs(), GREP, 1 * GB)
        b = isolated_cell(up_ofs(), GREP, 1 * GB)
        assert a is not b
        assert a.content_key() == b.content_key()

    def test_key_covers_every_simulation_input(self):
        base = isolated_cell(up_ofs(), GREP, 1 * GB)
        variants = [
            isolated_cell(up_hdfs(), GREP, 1 * GB),       # architecture
            isolated_cell(up_ofs(), WORDCOUNT, 1 * GB),   # app profile
            isolated_cell(up_ofs(), GREP, 2 * GB),        # input size
            isolated_cell(up_ofs(), GREP, 1 * GB, seed=7),  # seed
            isolated_cell(                                 # calibration
                up_ofs(), GREP, 1 * GB,
                DEFAULT_CALIBRATION.with_options(shuffle_residual=0.9),
            ),
            isolated_cell(                                 # registration
                up_ofs(), GREP, 1 * GB, register_dataset=False
            ),
        ]
        keys = {c.content_key() for c in variants}
        assert base.content_key() not in keys
        assert len(keys) == len(variants)

    def test_key_embeds_the_code_salt(self):
        cell = isolated_cell(up_ofs(), GREP, 1 * GB)
        assert CODE_SALT in canonical_json(cell.canonical_payload())

    def test_size_strings_parse_to_the_same_key(self):
        assert (
            isolated_cell(up_ofs(), GREP, "2GB").content_key()
            == isolated_cell(up_ofs(), GREP, 2 * GB).content_key()
        )

    def test_replay_keys_distinguish_trace_parameters(self):
        base = replay_cell(hybrid(), num_jobs=50)
        assert base.content_key() != replay_cell(
            hybrid(), num_jobs=60
        ).content_key()
        assert base.content_key() != replay_cell(
            hybrid(), num_jobs=50, seed=1
        ).content_key()
        assert base.content_key() != replay_cell(
            hybrid(), num_jobs=50, shrink_factor=2.0
        ).content_key()


class TestPicklability:
    """Cells must cross process boundaries intact (pool workers)."""

    @pytest.mark.parametrize("cell", [
        isolated_cell(up_ofs(), GREP, 1 * GB, seed=3),
        replay_cell(hybrid(), num_jobs=20),
        CellSpec(kind="probe", probe="ok"),
    ])
    def test_pickle_roundtrip_preserves_identity(self, cell):
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell
        assert clone.content_key() == cell.content_key()


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            CellSpec(kind="nope")

    def test_isolated_needs_architecture_and_app(self):
        with pytest.raises(ConfigurationError, match="architecture"):
            CellSpec(kind="isolated", app=GREP, input_bytes=1.0)

    def test_isolated_needs_positive_input(self):
        with pytest.raises(ConfigurationError, match="input_bytes"):
            CellSpec(kind="isolated", architecture=up_ofs(), app=GREP)

    def test_replay_needs_jobs(self):
        with pytest.raises(ConfigurationError, match="num_jobs"):
            CellSpec(kind="replay", architecture=hybrid())

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestSweepExperiment:
    def test_row_major_layout(self):
        archs = [up_ofs(), out_ofs()]
        sizes = [1 * GB, 2 * GB, 4 * GB]
        experiment = sweep_experiment(archs, GREP, sizes)
        assert len(experiment) == 6
        # All sizes of the first architecture come first.
        for i, cell in enumerate(experiment.cells):
            assert cell.architecture is archs[i // 3]
            assert cell.input_bytes == sizes[i % 3]

    def test_experiment_key_tracks_cells(self):
        a = sweep_experiment([up_ofs()], GREP, [1 * GB])
        b = sweep_experiment([up_ofs()], GREP, [2 * GB])
        assert a.content_key() != b.content_key()
