"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep every CLI invocation's result cache out of the repo tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


class TestInfo:
    def test_lists_architectures_and_thresholds(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("up-OFS", "up-HDFS", "out-OFS", "out-HDFS"):
            assert name in out
        assert "32GB" in out and "16GB" in out and "10GB" in out
        assert "wordcount" in out


class TestRun:
    def test_runs_job_and_prints_phases(self, capsys):
        assert main(["run", "--app", "grep", "--size", "1GB", "--arch", "up-OFS"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "map phase" in out
        assert "scale-up" in out

    def test_hybrid_routes_by_size(self, capsys):
        assert main(["run", "--app", "wordcount", "--size", "1GB"]) == 0
        assert "scale-up" in capsys.readouterr().out

    def test_unknown_arch_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--arch", "mainframe"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Hybrid" in err  # --help/errors enumerate the architectures

    def test_infeasible_job_reports_capacity(self, capsys):
        code = main(["run", "--app", "wordcount", "--size", "200GB",
                     "--arch", "up-HDFS"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        import json

        path = tmp_path / "run.json"
        assert main(["run", "--app", "grep", "--size", "1GB",
                     "--arch", "up-OFS", "--trace-out", str(path)]) == 0
        assert "written to" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "i", "C", "M"} <= phases


class TestSweep:
    def test_custom_sizes_print_four_panels(self, capsys):
        assert main(["sweep", "--app", "grep", "--sizes", "1GB,4GB"]) == 0
        out = capsys.readouterr().out
        assert "normalized execution time" in out
        assert "shuffle phase duration" in out
        assert "reduce phase duration" in out
        assert "4GB" in out

    def test_parallel_sweep_reports_runner_stats(self, capsys):
        assert main(["sweep", "--app", "grep", "--sizes", "1GB,2GB",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "[runner]" in out
        assert "8 cells" in out

    def test_hidden_jobs_alias_still_works(self, capsys):
        # One release of grace for the old spelling (hidden from --help).
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "--jobs", "3"])
        assert args.workers == 3
        assert "--jobs" not in build_parser().format_help()
        assert main(["sweep", "--app", "grep", "--sizes", "1GB",
                     "--jobs", "2"]) == 0
        assert "[runner]" in capsys.readouterr().out

    def test_workers_flag_is_uniform_across_grid_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in (["sweep"], ["crosspoints"], ["replay"],
                        ["resilience"], ["figures"]):
            args = parser.parse_args(command + ["--workers", "2"])
            assert args.workers == 2, command

    def test_second_run_is_fully_cached(self, capsys):
        args = ["sweep", "--app", "grep", "--sizes", "1GB,2GB"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "8 simulated" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "8 cached, 0 simulated" in second
        # Identical tables either way.
        assert first.split("[runner]")[0] == second.split("[runner]")[0]

    def test_no_cache_always_simulates(self, capsys):
        args = ["sweep", "--app", "grep", "--sizes", "1GB", "--no-cache"]
        for _ in range(2):
            assert main(args) == 0
            assert "4 simulated" in capsys.readouterr().out


class TestCache:
    def test_reports_empty_store(self, capsys):
        assert main(["cache"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_inventories_and_clears(self, capsys):
        assert main(["sweep", "--app", "grep", "--sizes", "1GB"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out
        assert "isolated" in out and "ok" in out
        assert main(["cache", "--clear"]) == 0
        assert "cleared 4" in capsys.readouterr().out
        assert main(["cache"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_explicit_dir_option(self, tmp_path, capsys):
        assert main(["cache", "--dir", str(tmp_path / "elsewhere")]) == 0
        out = capsys.readouterr().out
        assert "elsewhere" in out and "empty" in out

    def test_stats_counts_holes_by_error_type(self, capsys):
        assert main(["sweep", "--app", "grep", "--sizes", "1GB"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "json store" in out and "4 entries" in out

    def test_migrate_then_sqlite_grid_is_warm(self, capsys):
        assert main(["sweep", "--app", "grep", "--sizes", "1GB"]) == 0
        capsys.readouterr()
        assert main(["cache", "migrate"]) == 0
        assert "migrated 4 entries" in capsys.readouterr().out
        # The migrated store serves the same grid without simulating.
        assert main(["sweep", "--app", "grep", "--sizes", "1GB",
                     "--store", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "4 cached" in out and "0 simulated" in out

    def test_vacuum_reports_sizes(self, capsys):
        assert main(["sweep", "--app", "grep", "--sizes", "1GB",
                     "--store", "sqlite"]) == 0
        capsys.readouterr()
        assert main(["cache", "vacuum", "--store", "sqlite"]) == 0
        assert "vacuumed sqlite store" in capsys.readouterr().out

    def test_sqlite_store_flag_round_trips(self, capsys):
        assert main(["sweep", "--app", "grep", "--sizes", "1GB",
                     "--store", "sqlite"]) == 0
        capsys.readouterr()
        assert main(["cache", "--store", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "results.sqlite" in out and "4 entries" in out
        assert main(["cache", "--store", "sqlite", "--clear"]) == 0
        assert "cleared 4" in capsys.readouterr().out


class TestMission:
    def test_renders_from_frames_file(self, tmp_path, capsys):
        from repro.telemetry.bus import KIND_RUNNER, MetricsBus

        bus = MetricsBus(tmp_path / "frames.ndjson")
        bus.publish(KIND_RUNNER, 0.5, {"cells": 4, "done": 4,
                                       "cache_hits": 0, "simulated": 4,
                                       "infeasible": 0, "failures": 0,
                                       "retries": 0, "timeouts": 0,
                                       "store": "json"})
        out_path = tmp_path / "mission.html"
        assert main(["mission", "--frames", str(tmp_path / "frames.ndjson"),
                     "--out", str(out_path)]) == 0
        assert "1 frame(s)" in capsys.readouterr().out
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html and "http://" not in html

    def test_requires_exactly_one_source(self, capsys):
        assert main(["mission"]) == 1
        assert "exactly one" in capsys.readouterr().err


class TestTrace:
    def test_prints_cdf_and_shares(self, capsys):
        assert main(["trace", "--jobs", "500", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "CDF" in out
        assert "<1MB" in out

    def test_writes_trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--jobs", "50", "--out", str(path)]) == 0
        assert path.exists()
        from repro.workload.trace import Trace

        assert len(Trace.load(path)) == 50


class TestReplay:
    def test_prints_percentile_table(self, capsys):
        assert main(["replay", "--jobs", "60"]) == 0
        out = capsys.readouterr().out
        assert "Hybrid" in out and "THadoop" in out and "RHadoop" in out
        assert "scale-up jobs" in out and "scale-out jobs" in out

    def test_trace_out_records_hybrid_replay(self, tmp_path, capsys):
        import json

        path = tmp_path / "replay.json"
        assert main(["replay", "--jobs", "20", "--trace-out", str(path)]) == 0
        assert "Hybrid replay trace" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        categories = {
            e["cat"] for e in payload["traceEvents"] if e["ph"] != "M"
        }
        assert {"job", "task", "storage", "scheduler"} <= categories


class TestTraceExport:
    def test_writes_perfetto_loadable_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "export.json"
        assert main(["trace-export", "--jobs", "20", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        names = {e["name"] for e in payload["traceEvents"]}
        assert "job_submit" in names and "map_task" in names


class TestMetrics:
    def test_prints_and_dumps_registry(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(["metrics", "--jobs", "20", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "jobs_completed" in out
        payload = json.loads(path.read_text())
        completed = [k for k in payload if k.endswith("jobs_completed")]
        assert completed and sum(payload[k] for k in completed) == 20


class TestTimeline:
    def test_renders_gantt_and_totals(self, capsys):
        assert main(["timeline", "--jobs", "8", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "phase totals" in out
        assert "fb2009-00000" in out


class TestAdvise:
    def test_recommends_a_split(self, capsys):
        assert main(["advise", "--jobs", "40", "--objective", "p50"]) == 0
        out = capsys.readouterr().out
        assert "equal-cost splits" in out
        assert "recommended (p50):" in out
        assert "2up+12out" in out


class TestFigures:
    def test_writes_all_panels(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path), "--jobs", "200"]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        for stem in ("fig3", "fig5_wordcount", "fig6_grep", "fig7", "fig8",
                     "fig9_dfsio"):
            assert f"{stem}.txt" in names
            assert f"{stem}.json" in names
        import json

        payload = json.loads((tmp_path / "fig7.json").read_text())
        assert "wordcount_cross_point" in payload["notes"]


class TestServeAndSubmit:
    """The daemon and its client, end to end through the CLI."""

    def _start_daemon(self, tmp_path, extra=()):
        import threading
        import time

        port_file = tmp_path / "port.txt"
        thread = threading.Thread(
            target=main,
            args=(["serve", "--port", "0",
                   "--port-file", str(port_file),
                   "--checkpoint", str(tmp_path / "state.json"),
                   *extra],),
            daemon=True,
        )
        thread.start()
        for _ in range(200):
            if port_file.exists() and port_file.read_text().strip():
                break
            time.sleep(0.05)
        else:
            pytest.fail("daemon never wrote its port file")
        url = f"http://127.0.0.1:{port_file.read_text().strip()}"
        return thread, url

    def test_trace_submit_drain_shutdown(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["trace", "--jobs", "15", "--out", str(trace_path)]) == 0
        capsys.readouterr()

        thread, url = self._start_daemon(tmp_path)
        assert main(["submit", "--url", url, "--trace", str(trace_path),
                     "--drain"]) == 0
        out = capsys.readouterr().out
        assert "15 accepted" in out
        assert "drained: 15/15 finished" in out

        assert main(["submit", "--url", url, "--shutdown"]) == 0
        assert "shut down" in capsys.readouterr().out
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert (tmp_path / "state.json").exists()

    def test_ndjson_file_submit(self, tmp_path, capsys):
        import json

        from repro.core.api import JobSubmission

        batch = tmp_path / "jobs.ndjson"
        batch.write_text("".join(
            json.dumps(
                JobSubmission(job_id=f"j{i}", input_bytes=2**30).to_wire()
            ) + "\n"
            for i in range(5)
        ))
        thread, url = self._start_daemon(tmp_path)
        try:
            assert main(["submit", "--url", url, "--file", str(batch),
                         "--drain"]) == 0
            out = capsys.readouterr().out
            assert "5 accepted" in out and "0 rejected" in out
        finally:
            main(["submit", "--url", url, "--shutdown"])
            thread.join(timeout=10)

    def test_submit_without_action_errors(self, capsys):
        assert main(["submit"]) == 1
        assert "nothing to do" in capsys.readouterr().err

    def test_submit_unreachable_daemon_fails_cleanly(self, capsys):
        assert main(["submit", "--url", "http://127.0.0.1:9",
                     "--drain"]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
