"""Tests for the telemetry subsystem: tracer, metrics, export, and the
determinism guarantee (a traced run is byte-identical to an untraced one).
"""

import json

import pytest

from repro.apps import GREP, WORDCOUNT
from repro.core.architectures import hybrid, out_ofs, up_ofs
from repro.core.crosspoint import estimate_cross_point
from repro.core.deployment import Deployment
from repro.errors import ConfigurationError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PHASE_COMPLETE,
    PHASE_COUNTER,
    PHASE_INSTANT,
    TraceEvent,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    chrome_trace_to_events,
    read_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.units import GB
from repro.workload.fb2009 import generate_fb2009


class FakeSim:
    def __init__(self):
        self.now = 0.0


class TestTracer:
    def test_unbound_clock_is_zero(self):
        tracer = Tracer()
        assert tracer.now == 0.0
        tracer.instant("boot", "job")
        assert tracer.events[0].ts == 0.0

    def test_bind_follows_sim_clock(self):
        tracer, sim = Tracer(), FakeSim()
        tracer.bind(sim)
        sim.now = 12.5
        tracer.instant("tick", "job")
        assert tracer.events[0].ts == 12.5

    def test_complete_records_span_from_start(self):
        tracer, sim = Tracer(), FakeSim()
        tracer.bind(sim)
        sim.now = 10.0
        tracer.complete("map_task", "task", start=4.0, track="out", lane=3,
                        args={"job_id": "j1"})
        (event,) = tracer.events
        assert event.phase == PHASE_COMPLETE
        assert event.ts == 4.0 and event.dur == 6.0 and event.end == 10.0
        assert event.track == "out" and event.lane == 3
        assert event.args == {"job_id": "j1"}

    def test_complete_rejects_future_start(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.complete("bad", "task", start=1.0)

    def test_counter_dedups_consecutive_identical_samples(self):
        tracer, sim = Tracer(), FakeSim()
        tracer.bind(sim)
        tracer.counter("slots", {"busy": 2, "queued": 0}, track="up")
        sim.now = 1.0
        tracer.counter("slots", {"queued": 0, "busy": 2}, track="up")  # same
        sim.now = 2.0
        tracer.counter("slots", {"busy": 3, "queued": 0}, track="up")
        assert len(tracer) == 2
        assert [e.ts for e in tracer.events] == [0.0, 2.0]
        # A different track is an independent series.
        tracer.counter("slots", {"busy": 3, "queued": 0}, track="out")
        assert len(tracer) == 3

    def test_query_helpers(self):
        tracer = Tracer()
        tracer.instant("a", "job")
        tracer.instant("b", "task")
        tracer.instant("c", "task")
        assert tracer.categories() == {"job": 1, "task": 2}
        assert [e.name for e in tracer.by_category("task")] == ["b", "c"]
        tracer.clear()
        assert len(tracer) == 0 and tracer.categories() == {}

    def test_event_to_dict_roundtrips_fields(self):
        event = TraceEvent("x", "job", PHASE_INSTANT, 1.0, track="up", lane=2)
        d = event.to_dict()
        assert d["name"] == "x" and d["track"] == "up" and d["lane"] == 2


class TestMetricsRegistry:
    def test_instruments_are_created_lazily_and_cached(self):
        registry = MetricsRegistry()
        c = registry.counter("jobs")
        c.inc()
        registry.counter("jobs").inc(2)
        assert registry.counter("jobs").value == 3
        assert len(registry) == 1 and "jobs" in registry
        assert registry.get("jobs") is c
        assert registry.get("missing") is None

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="counter"):
            registry.gauge("x")

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(5)
        g.set(2.5)
        assert g.value == 2.5

    def test_dump_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(4)
        registry.histogram("t").observe(8.0)
        flat = registry.dump()
        assert flat["n"] == 4
        assert flat["t.count"] == 1 and flat["t.sum"] == 8.0
        kinds = {kind for _, kind, _ in registry.rows()}
        assert kinds == {"counter", "histogram"}


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        assert h.count == 4 and h.total == 15.0
        assert h.min == 1.0 and h.max == 8.0 and h.mean == 3.75

    def test_quantiles_hit_bucket_midpoints(self):
        h = Histogram("h")
        for _ in range(99):
            h.observe(1.5)  # bucket [1, 2)
        h.observe(100.0)  # bucket [64, 128)
        assert h.quantile(0.5) == pytest.approx(2 ** 0.5)
        assert h.quantile(1.0) == pytest.approx(2 ** 6.5)
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) > 0

    def test_zeros_and_negatives(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(0.0)
        h.observe(4.0)
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.99) == pytest.approx(2 ** 2.5)
        with pytest.raises(ConfigurationError):
            h.observe(-1.0)
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_empty_summary_is_all_zero(self):
        assert set(Histogram("h").summary().values()) == {0}

    def test_summary_reports_p95_between_p50_and_p99(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        summary = h.summary()
        assert {"p50", "p95", "p99"} <= set(summary)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p95"] == h.quantile(0.95)

    def test_dump_and_write_metrics_include_p95(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("t").observe(8.0)
        flat = registry.dump()
        assert "t.p95" in flat
        path = write_metrics(registry, tmp_path / "m.json")
        assert "t.p95" in json.loads(path.read_text())


class TestChromeExport:
    def _traced_run(self):
        tracer = Tracer()
        deployment = Deployment(hybrid(), register_datasets=True, tracer=tracer)
        deployment.run_job(WORDCOUNT.make_job(4 * GB))
        return tracer

    def test_tracks_become_named_processes(self):
        tracer = Tracer()
        sim = FakeSim()
        tracer.bind(sim)
        tracer.instant("a", "job", track="alpha")
        sim.now = 1.0
        tracer.complete("b", "task", start=0.5, track="beta", lane=7)
        events = chrome_trace_events(tracer)
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["alpha", "beta"]
        pids = {m["args"]["name"]: m["pid"] for m in meta}
        span = next(e for e in events if e["ph"] == "X")
        assert span["pid"] == pids["beta"] and span["tid"] == 7
        assert span["ts"] == pytest.approx(0.5e6)
        assert span["dur"] == pytest.approx(0.5e6)
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "p" and instant["pid"] == pids["alpha"]

    def test_full_run_exports_valid_json(self, tmp_path):
        tracer = self._traced_run()
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == len(tracer) + len(
            [e for e in events if e["ph"] == "M"]
        )
        categories = {e["cat"] for e in events if e["ph"] != "M"}
        assert {"job", "task", "storage", "scheduler", "queue"} <= categories
        names = {e["name"] for e in events}
        for expected in ("job_submit", "algorithm1_decision",
                         "scheduler_decision", "map_task", "reduce_task",
                         "slots"):
            assert expected in names, expected
        # Counter events always carry args (Perfetto requires them).
        assert all("args" in e for e in events if e["ph"] == PHASE_COUNTER)

    def test_storage_events_on_their_own_tracks(self):
        tracer = self._traced_run()
        storage_tracks = {e.track for e in tracer.by_category("storage")}
        assert "OFS" in storage_tracks

    def test_write_metrics_dump(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a.jobs").inc(3)
        path = write_metrics(registry, tmp_path / "m.json")
        assert json.loads(path.read_text()) == {"a.jobs": 3.0}


class TestChromeTraceSchema:
    """The exported trace-event schema, pinned record by record."""

    def _document(self):
        tracer = Tracer()
        deployment = Deployment(hybrid(), register_datasets=True, tracer=tracer)
        deployment.run_job(WORDCOUNT.make_job(4 * GB))
        return tracer, chrome_trace_json(tracer)

    def test_every_record_has_a_known_phase(self):
        _, doc = self._document()
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {PHASE_COMPLETE, PHASE_INSTANT, PHASE_COUNTER, "M"}
        assert {PHASE_COMPLETE, PHASE_INSTANT, PHASE_COUNTER} <= phases

    def test_dur_appears_exactly_on_complete_spans(self):
        _, doc = self._document()
        for record in doc["traceEvents"]:
            if record["ph"] == PHASE_COMPLETE:
                assert "dur" in record and record["dur"] >= 0.0
            else:
                assert "dur" not in record

    def test_timestamps_are_nonnegative_microseconds(self):
        tracer, doc = self._document()
        data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert all(e["ts"] >= 0.0 for e in data)
        # µs in the document, seconds on the tracer, same horizon.
        assert max(e["ts"] + e.get("dur", 0.0) for e in data) == pytest.approx(
            max(e.ts + e.dur for e in tracer.events) * 1e6
        )

    def test_document_survives_a_json_round_trip(self):
        _, doc = self._document()
        assert json.loads(json.dumps(doc)) == doc

    def test_events_round_trip_through_the_inverse(self, tmp_path):
        tracer, doc = self._document()
        for restored in (
            chrome_trace_to_events(doc),
            read_chrome_trace(write_chrome_trace(tracer, tmp_path / "t.json")),
        ):
            originals = list(tracer.events)
            assert len(restored) == len(originals)
            for a, b in zip(originals, restored):
                assert (a.name, a.category, a.phase, a.track, a.lane) == (
                    b.name, b.category, b.phase, b.track, b.lane
                )
                # Through µs and back: equal to float tolerance only.
                assert b.ts == pytest.approx(a.ts, abs=1e-9)
                assert b.dur == pytest.approx(a.dur, abs=1e-9)

    def test_fault_instants_ride_the_faults_track(self):
        from repro.faults.plan import (
            FaultEvent,
            FaultPlan,
            NODE_CRASH,
            NODE_RECOVER,
        )

        plan = FaultPlan(events=(
            FaultEvent(time=2.0, kind=NODE_CRASH, member="out", node=1),
            FaultEvent(time=20.0, kind=NODE_RECOVER, member="out", node=1),
        ))
        tracer = Tracer()
        deployment = Deployment(
            hybrid(), register_datasets=True, tracer=tracer, fault_plan=plan
        )
        deployment.run_job(WORDCOUNT.make_job(64 * GB))
        faults = list(tracer.by_category("fault"))
        assert faults and all(e.track == "faults" for e in faults)
        assert "node_crash" in {e.name for e in faults}


class TestDeploymentIntegration:
    def test_metrics_cover_jobs_tasks_and_storage(self):
        metrics = MetricsRegistry()
        deployment = Deployment(
            hybrid(), register_datasets=True, metrics=metrics
        )
        deployment.run_job(WORDCOUNT.make_job(4 * GB))
        flat = metrics.dump()
        assert flat["scale-up.jobs_submitted"] == 1
        assert flat["scale-up.jobs_completed"] == 1
        assert flat["scale-up.map_tasks_finished"] > 0
        assert flat["scale-up.job_seconds.count"] == 1
        assert flat["OFS.read_bytes"] > 0 and flat["OFS.read_ops"] > 0
        assert flat["router.to.scale-up"] == 1

    def test_untraced_deployment_has_no_observers(self):
        deployment = Deployment(hybrid(), register_datasets=True)
        assert deployment.sim.tracer is None
        assert deployment.sim.metrics is None
        deployment.run_job(WORDCOUNT.make_job(4 * GB))


class TestDeterminism:
    """The tentpole guarantee: telemetry never changes the simulation."""

    def _replay(self, traced: bool):
        trace = generate_fb2009(num_jobs=40, seed=11, duration=600.0).shrink(5.0)
        deployment = Deployment(
            hybrid(),
            register_datasets=True,
            tracer=Tracer() if traced else None,
            metrics=MetricsRegistry() if traced else None,
        )
        return deployment.run_trace(trace.to_jobspecs())

    def test_traced_replay_is_byte_identical(self):
        baseline = self._replay(traced=False)
        observed = self._replay(traced=True)
        assert baseline == observed  # JobResult dataclass equality

    def test_traced_sweep_preserves_cross_points(self):
        sizes = [1 * GB, 4 * GB, 16 * GB, 48 * GB, 100 * GB]

        def sweep(traced: bool):
            times = {}
            for spec in (up_ofs(), out_ofs()):
                deployment = Deployment(
                    spec,
                    register_datasets=True,
                    tracer=Tracer() if traced else None,
                )
                times[spec.name] = [
                    deployment.run_job(GREP.make_job(s)).execution_time
                    for s in sizes
                ]
            return estimate_cross_point(
                sizes, times["up-OFS"], times["out-OFS"]
            )

        untraced_cross = sweep(traced=False)
        traced_cross = sweep(traced=True)
        assert untraced_cross == traced_cross
        assert untraced_cross is not None
