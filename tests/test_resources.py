"""Tests for slot pools and processor-sharing bandwidth resources."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simulator import FairShareResource, Simulation, SlotPool


class TestSlotPool:
    def test_grants_immediately_when_free(self):
        sim = Simulation()
        pool = SlotPool(sim, 2)
        granted = []
        pool.request(lambda: granted.append(sim.now))
        assert granted == [0.0]
        assert pool.in_use == 1
        assert pool.free == 1

    def test_queues_when_full_fifo(self):
        sim = Simulation()
        pool = SlotPool(sim, 1)
        order = []
        pool.request(lambda: order.append("first"))
        pool.request(lambda: order.append("second"))
        pool.request(lambda: order.append("third"))
        assert order == ["first"]
        assert pool.queued == 2
        pool.release()
        assert order == ["first", "second"]
        pool.release()
        assert order == ["first", "second", "third"]

    def test_handoff_keeps_slot_busy(self):
        sim = Simulation()
        pool = SlotPool(sim, 1)
        pool.request(lambda: None)
        pool.request(lambda: None)
        pool.release()  # hands directly to the waiter
        assert pool.in_use == 1

    def test_release_idle_raises(self):
        sim = Simulation()
        pool = SlotPool(sim, 1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(SimulationError):
            SlotPool(Simulation(), 0)

    def test_utilization_integral(self):
        sim = Simulation()
        pool = SlotPool(sim, 2)
        pool.request(lambda: None)  # 1 of 2 busy from t=0
        sim.schedule(10.0, pool.release)
        sim.run()
        assert sim.now == 10.0
        assert pool.utilization() == pytest.approx(0.5)


class TestFairShareBasics:
    def test_single_flow_runs_at_capacity(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = []
        res.start_flow(1000.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(10.0)]

    def test_cap_binds_below_capacity(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = []
        res.start_flow(1000.0, lambda: done.append(sim.now), cap=10.0)
        sim.run()
        assert done == [pytest.approx(100.0)]

    def test_equal_flows_share_equally(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = []
        res.start_flow(500.0, lambda: done.append(("a", sim.now)))
        res.start_flow(500.0, lambda: done.append(("b", sim.now)))
        sim.run()
        # Both at 50 B/s -> both finish at t=10.
        assert done == [("a", pytest.approx(10.0)), ("b", pytest.approx(10.0))]

    def test_departure_speeds_up_survivor(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = {}
        res.start_flow(200.0, lambda: done.setdefault("short", sim.now))
        res.start_flow(600.0, lambda: done.setdefault("long", sim.now))
        sim.run()
        # Shared 50/50 until t=4 (short done), then long runs at 100:
        # long has 600-200=400 left -> finishes at 4 + 4 = 8.
        assert done["short"] == pytest.approx(4.0)
        assert done["long"] == pytest.approx(8.0)

    def test_arrival_slows_existing_flow(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = {}
        res.start_flow(1000.0, lambda: done.setdefault("first", sim.now))
        sim.schedule(5.0, lambda: res.start_flow(250.0, lambda: done.setdefault("second", sim.now)))
        sim.run()
        # first: 500 by t=5, then 50 B/s alongside second: second done at
        # t=10 (250/50), first has 250 left at t=10 -> done at 12.5.
        assert done["second"] == pytest.approx(10.0)
        assert done["first"] == pytest.approx(12.5)

    def test_progressive_filling_redistributes_capped_slack(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = {}
        res.start_flow(1000.0, lambda: done.setdefault("capped", sim.now), cap=20.0)
        res.start_flow(800.0, lambda: done.setdefault("open", sim.now))
        sim.run()
        # capped flow: 20 B/s -> t=50; open flow gets 80 B/s -> t=10.
        assert done["open"] == pytest.approx(10.0)
        assert done["capped"] == pytest.approx(50.0)

    def test_zero_byte_flow_completes_async(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = []
        res.start_flow(0.0, lambda: done.append(sim.now))
        assert done == []  # not synchronous
        sim.run()
        assert done == [0.0]

    def test_uncapacitated_needs_flow_caps(self):
        sim = Simulation()
        res = FairShareResource(sim, None)
        with pytest.raises(SimulationError):
            res.start_flow(100.0, lambda: None)
        done = []
        res.start_flow(100.0, lambda: done.append(sim.now), cap=10.0)
        sim.run()
        assert done == [pytest.approx(10.0)]

    def test_cancel_flow(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        done = []
        flow = res.start_flow(1000.0, lambda: done.append("cancelled"))
        res.start_flow(1000.0, lambda: done.append("kept"))
        sim.schedule(1.0, lambda: res.cancel_flow(flow))
        sim.run()
        assert done == ["kept"]

    def test_rejects_bad_arguments(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            FairShareResource(sim, 0.0)
        res = FairShareResource(sim, 10.0)
        with pytest.raises(SimulationError):
            res.start_flow(-5.0, lambda: None)
        with pytest.raises(SimulationError):
            res.start_flow(5.0, lambda: None, cap=0.0)

    def test_current_rates_sum_within_capacity(self):
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        for _ in range(5):
            res.start_flow(1e6, lambda: None)
        rates = res.current_rates()
        assert sum(rates) == pytest.approx(100.0)
        assert all(r == pytest.approx(20.0) for r in rates)


class TestFairShareProperties:
    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=20
        ),
        capacity=st.floats(min_value=1.0, max_value=1e9),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_equals_total_work_over_capacity(self, sizes, capacity):
        """With no caps, processor sharing is work-conserving: the last
        completion happens exactly at total_bytes / capacity."""
        sim = Simulation()
        res = FairShareResource(sim, capacity)
        done = []
        for size in sizes:
            res.start_flow(size, lambda: done.append(sim.now))
        end = sim.run()
        assert len(done) == len(sizes)
        assert end == pytest.approx(sum(sizes) / capacity, rel=1e-6)

    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=10
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_completion_order_follows_size(self, sizes):
        """Equal-rate flows complete in (near-)size order.

        Flows whose sizes differ by less than the resource's relative
        completion epsilon (1 part in 1e9) legitimately finish in the
        same batch, so the order check tolerates such ties.
        """
        sim = Simulation()
        res = FairShareResource(sim, 100.0)
        finished = []
        for i, size in enumerate(sizes):
            res.start_flow(size, lambda i=i: finished.append(i))
        sim.run()
        finish_sizes = [sizes[i] for i in finished]
        for a, b in zip(finish_sizes, finish_sizes[1:]):
            assert b >= a * (1 - 1e-8)

    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8
        ),
        cap=st.floats(min_value=0.5, max_value=50.0),
        capacity=st.floats(min_value=10.0, max_value=1000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_caps_lower_bound_completion_times(self, sizes, cap, capacity):
        """No flow can finish earlier than bytes / min(cap, capacity)."""
        sim = Simulation()
        res = FairShareResource(sim, capacity)
        completion = {}
        for i, size in enumerate(sizes):
            res.start_flow(size, lambda i=i: completion.setdefault(i, sim.now), cap=cap)
        sim.run()
        for i, size in enumerate(sizes):
            bound = size / min(cap, capacity)
            assert completion[i] >= bound * (1 - 1e-6)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_staggered_arrivals_all_complete(self, data):
        """Flows arriving at random times all complete, clock monotone."""
        n = data.draw(st.integers(min_value=1, max_value=12))
        arrivals = sorted(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        sizes = data.draw(
            st.lists(
                st.floats(min_value=1.0, max_value=1e5), min_size=n, max_size=n
            )
        )
        sim = Simulation()
        res = FairShareResource(sim, 37.0)
        done = []
        for t, size in zip(arrivals, sizes):
            sim.schedule_at(
                t, lambda s=size: res.start_flow(s, lambda: done.append(sim.now))
            )
        sim.run()
        assert len(done) == n
        assert done == sorted(done)
        assert res.active_flows == 0
