"""Tests for HadoopConfig and the spill model."""

import pytest

from repro.errors import ConfigurationError
from repro.mapreduce.config import HadoopConfig
from repro.mapreduce.spill import (
    map_output_store_bytes,
    reduce_shuffle_store_bytes,
    spill_count,
)
from repro.units import GB, MB


def make_config(**overrides):
    defaults = dict(heap_size=1.5 * GB)
    defaults.update(overrides)
    return HadoopConfig(**defaults)


class TestHadoopConfig:
    def test_paper_defaults(self):
        config = make_config()
        assert config.block_size == 128 * MB
        assert config.replication == 2

    def test_buffers_derive_from_heap(self):
        config = make_config(
            heap_size=8 * GB, io_sort_fraction=0.5, reduce_buffer_fraction=0.75
        )
        assert config.sort_buffer == 4 * GB
        assert config.reduce_buffer == 6 * GB

    def test_with_options_copies(self):
        config = make_config()
        bigger = config.with_options(heap_size=8 * GB)
        assert bigger.heap_size == 8 * GB
        assert config.heap_size == 1.5 * GB

    @pytest.mark.parametrize(
        "field,value",
        [
            ("heap_size", 0),
            ("block_size", -1),
            ("replication", 0),
            ("io_sort_fraction", 0),
            ("io_sort_fraction", 1.5),
            ("reduce_buffer_fraction", 0),
            ("task_overhead", -1),
            ("shuffle_residual", 1.5),
            ("task_jitter", 1.0),
            ("reducer_target_bytes", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            make_config(**{field: value})


class TestSpillCount:
    def test_zero_data_never_spills(self):
        assert spill_count(0, 100) == 0

    def test_fits_in_one(self):
        assert spill_count(80, 100) == 1

    def test_multiple_spills(self):
        assert spill_count(250, 100) == 3

    def test_exact_boundary(self):
        assert spill_count(200, 100) == 2

    def test_rejects_bad_buffer(self):
        with pytest.raises(ConfigurationError):
            spill_count(100, 0)


class TestMapOutputStoreBytes:
    def test_no_spill_writes_output_once(self):
        assert map_output_store_bytes(80, 100, spill_io_factor=1.0) == 80

    def test_spill_adds_merge_pass(self):
        assert map_output_store_bytes(300, 100, spill_io_factor=1.0) == 600
        assert map_output_store_bytes(300, 100, spill_io_factor=0.5) == 450

    def test_zero_output(self):
        assert map_output_store_bytes(0, 100, 1.0) == 0


class TestReduceShuffleStoreBytes:
    def test_in_memory_charges_residual_only(self):
        bytes_moved = reduce_shuffle_store_bytes(
            shuffle_share=80, residual_fraction=0.35, reduce_buffer=100,
            spill_io_factor=1.0,
        )
        assert bytes_moved == pytest.approx(28.0)

    def test_overflow_adds_full_spill(self):
        bytes_moved = reduce_shuffle_store_bytes(
            shuffle_share=300, residual_fraction=0.35, reduce_buffer=100,
            spill_io_factor=1.0,
        )
        assert bytes_moved == pytest.approx(300 * 0.35 + 300)

    def test_bigger_heap_avoids_spill(self):
        """The paper's heap story: same share, larger buffer, less I/O."""
        small_heap = reduce_shuffle_store_bytes(300, 0.35, 100, 1.0)
        big_heap = reduce_shuffle_store_bytes(300, 0.35, 1000, 1.0)
        assert big_heap < small_heap

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            reduce_shuffle_store_bytes(100, 1.5, 100, 1.0)

    def test_rejects_negative_share(self):
        with pytest.raises(ConfigurationError):
            reduce_shuffle_store_bytes(-1, 0.5, 100, 1.0)
