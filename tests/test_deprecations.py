"""Deprecation hygiene: completed cycles fail loudly, the repo stays quiet.

Two invariants (see ``repro.compat``):

* a removed legacy spelling raises ``TypeError`` — the
  ``register_datasets=`` kwarg and the bare-default ``run_job`` warning
  completed their deprecation cycle and are gone, so stale callers fail
  loudly instead of silently changing behaviour; and
* no in-repo caller — library entry points, CLI commands — triggers any
  deprecation warning.  ``warn_deprecated`` stays for future shims.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import pytest

from repro.analysis.figures import fig10_trace_replay
from repro.analysis.sweep import run_isolated, sweep_architectures
from repro.apps import GREP
from repro.cli import main
from repro.compat import _SUNSET, warn_deprecated
from repro.core.architectures import up_hdfs, up_ofs
from repro.core.deployment import Deployment
from repro.units import GB
from repro.workload.fb2009 import generate_fb2009


@contextmanager
def no_deprecations():
    """Turn any DeprecationWarning raised inside the block into a failure."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestHelperStillUniform:
    """Future shims must keep the uniform sunset suffix."""

    def test_helper_appends_sunset_suffix(self):
        with pytest.warns(DeprecationWarning) as caught:
            warn_deprecated("old_thing() is deprecated", stacklevel=2)
        assert str(caught[0].message).endswith(_SUNSET)


class TestCompletedCyclesFailLoudly:
    """Removed spellings raise TypeError, never warn-and-continue."""

    def test_run_trace_plural_kwarg_is_gone(self):
        deployment = Deployment(up_ofs())
        trace = generate_fb2009(num_jobs=3, seed=7, duration=60.0)
        with pytest.raises(TypeError, match="register_datasets"):
            deployment.run_trace(trace.to_jobspecs(), register_datasets=False)

    def test_run_job_bare_default_no_longer_warns(self):
        deployment = Deployment(up_ofs())
        with no_deprecations():
            result = deployment.run_job(GREP.make_job(1 * GB))
        assert result.execution_time > 0


class TestRepoIsWarningClean:
    """No in-repo caller goes through a deprecated path."""

    def test_run_isolated(self):
        with no_deprecations():
            run_isolated(up_ofs(), GREP, 1 * GB)

    def test_sweep_architectures(self):
        with no_deprecations():
            sweep_architectures([up_ofs(), up_hdfs()], GREP, [1 * GB])

    def test_fig10_trace_replay(self):
        with no_deprecations():
            fig10_trace_replay(num_jobs=10, seed=7)

    def test_cli_run_command(self, capsys):
        with no_deprecations():
            assert main(["run", "--app", "grep", "--size", "1GB",
                         "--arch", "up-OFS"]) == 0
        capsys.readouterr()

    def test_cli_sweep_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with no_deprecations():
            assert main(["sweep", "--app", "grep", "--sizes", "1GB",
                         "--workers", "2"]) == 0
        capsys.readouterr()

    def test_service_admission_path(self, tmp_path):
        from repro.core.api import JobSubmission
        from repro.service import ReproService

        with no_deprecations():
            service = ReproService(
                "Hybrid", checkpoint_path=str(tmp_path / "state.json")
            )
            service.submit(JobSubmission(job_id="j1", input_bytes=1 * GB))
            service.drain()
