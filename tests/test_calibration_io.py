"""Tests for Calibration JSON round-tripping (strict schema).

The serialised form is what ``--calibration FILE`` loads and what the
online calibrator could persist; the schema is strict — unknown fields,
wrong kinds and wrong value types are all rejected loudly, so a stale
or hand-mangled file never silently half-applies.
"""

import json

import pytest

from repro.core.calibration import (
    CALIBRATION_KIND,
    CALIBRATION_SCHEMA,
    Calibration,
    DEFAULT_CALIBRATION,
)
from repro.errors import ConfigurationError


class TestRoundTrip:
    def test_default_round_trips(self):
        restored = Calibration.from_json(DEFAULT_CALIBRATION.to_json())
        assert restored == DEFAULT_CALIBRATION

    def test_modified_round_trips(self):
        calibration = DEFAULT_CALIBRATION.with_options(
            core_speed_up=0.9, task_overhead_up=1.61, scheduler_policy="fair"
        )
        restored = Calibration.from_json(calibration.to_json())
        assert restored == calibration
        assert restored.core_speed_up == 0.9
        assert restored.scheduler_policy == "fair"

    def test_json_is_deterministic(self):
        assert DEFAULT_CALIBRATION.to_json() == DEFAULT_CALIBRATION.to_json()
        # sort_keys: byte-identical regardless of construction order.
        a = DEFAULT_CALIBRATION.with_options(core_speed_up=0.9, heap_up=2.0)
        b = DEFAULT_CALIBRATION.with_options(heap_up=2.0, core_speed_up=0.9)
        assert a.to_json() == b.to_json()

    def test_payload_is_versioned(self):
        payload = DEFAULT_CALIBRATION.to_dict()
        assert payload["kind"] == CALIBRATION_KIND
        assert payload["schema"] == CALIBRATION_SCHEMA

    def test_missing_fields_keep_defaults(self):
        payload = {
            "kind": CALIBRATION_KIND,
            "schema": CALIBRATION_SCHEMA,
            "fields": {"core_speed_up": 0.8},
        }
        restored = Calibration.from_dict(payload)
        assert restored.core_speed_up == 0.8
        assert restored.task_overhead_up == DEFAULT_CALIBRATION.task_overhead_up


class TestStrictRejection:
    def base_payload(self, **fields):
        return {
            "kind": CALIBRATION_KIND,
            "schema": CALIBRATION_SCHEMA,
            "fields": fields,
        }

    def test_unknown_field_rejected(self):
        payload = self.base_payload(core_speed_up=0.9, warp_factor=9.0)
        with pytest.raises(ConfigurationError, match="warp_factor"):
            Calibration.from_dict(payload)

    def test_wrong_kind_rejected(self):
        payload = self.base_payload()
        payload["kind"] = "something-else"
        with pytest.raises(ConfigurationError, match="kind"):
            Calibration.from_dict(payload)

    def test_wrong_schema_rejected(self):
        payload = self.base_payload()
        payload["schema"] = CALIBRATION_SCHEMA + 1
        with pytest.raises(ConfigurationError, match="schema"):
            Calibration.from_dict(payload)

    def test_fields_must_be_object(self):
        payload = self.base_payload()
        payload["fields"] = [1, 2, 3]
        with pytest.raises(ConfigurationError):
            Calibration.from_dict(payload)

    def test_wrong_value_type_rejected(self):
        with pytest.raises(ConfigurationError, match="core_speed_up"):
            Calibration.from_dict(self.base_payload(core_speed_up="fast"))

    def test_bool_is_not_a_number(self):
        # bool is an int subclass; the schema must still reject it.
        with pytest.raises(ConfigurationError, match="core_speed_up"):
            Calibration.from_dict(self.base_payload(core_speed_up=True))

    def test_int_field_rejects_bool_and_float(self):
        with pytest.raises(ConfigurationError, match="replication"):
            Calibration.from_dict(self.base_payload(replication=True))
        with pytest.raises(ConfigurationError, match="replication"):
            Calibration.from_dict(self.base_payload(replication=2.5))

    def test_float_field_accepts_int(self):
        restored = Calibration.from_dict(self.base_payload(core_speed_up=1))
        assert restored.core_speed_up == 1.0
        assert isinstance(restored.core_speed_up, float)

    def test_not_an_object_rejected(self):
        with pytest.raises(ConfigurationError):
            Calibration.from_dict(["not", "a", "dict"])

    def test_invalid_json_text_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            Calibration.from_json("{not json")


class TestSaveLoad:
    def test_save_then_load(self, tmp_path):
        calibration = DEFAULT_CALIBRATION.with_options(core_speed_up=0.9)
        path = calibration.save(tmp_path / "cal.json")
        assert path.exists()
        assert Calibration.load(path) == calibration

    def test_saved_file_is_valid_json(self, tmp_path):
        path = DEFAULT_CALIBRATION.save(tmp_path / "cal.json")
        payload = json.loads(path.read_text())
        assert payload["kind"] == CALIBRATION_KIND

    def test_cli_loads_saved_calibration(self, tmp_path, capsys):
        """--calibration FILE is honoured by the run command."""
        from repro.cli import main

        path = DEFAULT_CALIBRATION.with_options(core_speed_up=0.9).save(
            tmp_path / "cal.json"
        )
        code = main([
            "run", "--app", "wordcount", "--size", "1GB",
            "--arch", "Hybrid", "--calibration", str(path),
        ])
        assert code == 0
        assert "execution time" in capsys.readouterr().out

    def test_cli_rejects_mangled_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "repro-calibration", "schema": 1, '
                       '"fields": {"warp_factor": 9}}')
        code = main([
            "run", "--size", "1GB", "--calibration", str(bad),
        ])
        assert code == 1
        assert "warp_factor" in capsys.readouterr().err
