"""Tests for the closed-form execution-time estimator and the analytic
fast path built on top of it (docs/KERNEL.md)."""

import pytest

from repro.analysis.analytic import AnalyticEstimate, estimate
from repro.apps import GREP, TESTDFSIO_WRITE, WORDCOUNT
from repro.core import Deployment, FastPathPolicy
from repro.core.architectures import hybrid, out_ofs, up_hdfs, up_ofs
from repro.errors import ConfigurationError
from repro.faults import default_resilience_plan
from repro.units import GB, MB
from repro.workload.fb2009 import DAY, generate_fb2009


class TestEstimate:
    def test_phases_positive_and_sum(self):
        result = estimate(up_ofs(), WORDCOUNT.make_job(4 * GB))
        assert result.setup > 0
        assert result.map_phase > 0
        assert result.shuffle_phase > 0
        assert result.reduce_phase >= 0
        assert result.execution_time == pytest.approx(
            result.setup + result.map_phase + result.shuffle_phase
            + result.reduce_phase
        )

    def test_monotone_in_input_size(self):
        small = estimate(out_ofs(), GREP.make_job(2 * GB)).execution_time
        large = estimate(out_ofs(), GREP.make_job(32 * GB)).execution_time
        assert large > small

    def test_wave_steps_visible(self):
        """One extra wave (crossing a slot multiple) bumps the map phase."""
        spec = up_ofs()  # 48 map slots
        just_fits = estimate(spec, GREP.make_job(48 * 128 * 2**20))
        one_more = estimate(spec, GREP.make_job(49 * 128 * 2**20))
        assert one_more.map_phase > just_fits.map_phase * 1.5

    def test_rejects_hybrid(self):
        with pytest.raises(ConfigurationError):
            estimate(hybrid(), WORDCOUNT.make_job(GB))

    def test_dfsio_write_has_trivial_shuffle(self):
        result = estimate(out_ofs(), TESTDFSIO_WRITE.make_job(30 * GB))
        assert result.shuffle_phase < 8.0
        assert result.reduce_phase < 8.0

    def test_matches_simulator_direction_on_architecture_choice(self):
        """The estimator agrees with the simulator about who wins at the
        extremes — the minimum bar for using it as a sanity oracle."""
        small = WORDCOUNT.make_job(2 * GB)
        assert (
            estimate(up_ofs(), small).execution_time
            < estimate(out_ofs(), small).execution_time
        )
        # The algebra's crossing sits later than the simulator's (no
        # jitter smoothing), so probe deep into scale-out territory.
        large = WORDCOUNT.make_job(256 * GB)
        assert (
            estimate(out_ofs(), large).execution_time
            < estimate(up_ofs(), large).execution_time
        )

    def test_hdfs_architectures_supported(self):
        result = estimate(up_hdfs(), GREP.make_job(4 * GB))
        assert result.execution_time > 0


def _fb2009_jobspecs(num_jobs: int, seed: int = 2009):
    trace = generate_fb2009(
        num_jobs=num_jobs, duration=DAY * num_jobs / 6000.0, seed=seed
    ).shrink(5.0)
    return trace.to_jobspecs()


class TestFastPathCrossValidation:
    """The analytic fast path must agree with full simulation on the
    jobs it takes — and must *never* take jobs outside its policy."""

    def test_eligible_small_jobs_within_tolerance(self):
        """Conservative tier, isolated sub-MB FB-2009 jobs: each job the
        fast path takes must land within 25% of the fully-simulated
        execution time (measured worst case: 9.5%)."""
        small = [j for j in _fb2009_jobspecs(80) if j.input_bytes <= MB][:12]
        assert len(small) >= 8  # ~40% of FB-2009 is sub-MB; the slice holds
        for job in small:
            fast = Deployment(out_ofs(), fast_path=FastPathPolicy.small_jobs())
            got = fast.run_job(job)
            assert fast.fast_path_jobs == 1, "policy should take this job"
            assert fast.trackers[0].analytic_jobs == 1
            want = Deployment(out_ofs()).run_job(job)
            assert got.execution_time == pytest.approx(
                want.execution_time, rel=0.25
            )

    def test_ineligible_large_job_never_takes_fast_path(self):
        """A multi-wave 8 GB job under the conservative policy must be
        simulated in full — and byte-identically to a deployment built
        without any fast path at all."""
        job = WORDCOUNT.make_job(8 * GB)
        fast = Deployment(out_ofs(), fast_path=FastPathPolicy.small_jobs())
        got = fast.run_job(job)
        assert fast.fast_path_jobs == 0
        assert fast.trackers[0].analytic_jobs == 0
        want = Deployment(out_ofs()).run_job(job)
        assert got.execution_time == want.execution_time  # exact, not approx

    def test_busy_tracker_declines_conservative_tier(self):
        """require_idle: a second small job arriving while the first is
        still active falls back to full simulation."""
        small = [j for j in _fb2009_jobspecs(80) if j.input_bytes <= MB][:2]
        dep = Deployment(out_ofs(), fast_path=FastPathPolicy.small_jobs())
        for job in small:
            dep.submit(job)  # same instant: tracker busy for the second
        dep.run()
        assert dep.fast_path_jobs == 1
        assert dep.trackers[0].analytic_jobs == 1

    def test_full_analytic_replay_within_tolerance(self):
        """Million-job tier on the paper's hybrid: every job goes
        analytic, and the replay-level aggregates stay within tolerance
        of full simulation (measured: makespan ~0.0%, median ~4%)."""
        jobs = _fb2009_jobspecs(150)
        base = Deployment(hybrid()).run_trace(jobs, register_dataset=False)
        fast_dep = Deployment(hybrid(), fast_path=FastPathPolicy.full_analytic())
        fast = fast_dep.run_trace(jobs, register_dataset=False)
        assert fast_dep.fast_path_jobs == len(jobs)
        span = lambda rs: max(r.end_time for r in rs) - min(
            r.submit_time for r in rs
        )
        assert span(fast) == pytest.approx(span(base), rel=0.05)
        errs = sorted(
            abs(f.execution_time - b.execution_time) / b.execution_time
            for b, f in zip(
                sorted(base, key=lambda r: r.submit_time),
                sorted(fast, key=lambda r: r.submit_time),
            )
            if b.execution_time > 0
        )
        assert errs[len(errs) // 2] < 0.15  # median per-job error

    def test_fast_path_refuses_fault_plans(self):
        """The analytic forms assume fault-free runs; combining the fast
        path with a fault plan must fail loudly at construction."""
        plan = default_resilience_plan(duration=100.0, seed=7)
        with pytest.raises(ConfigurationError):
            Deployment(
                out_ofs(),
                fast_path=FastPathPolicy.small_jobs(),
                fault_plan=plan,
            )
