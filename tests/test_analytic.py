"""Tests for the closed-form execution-time estimator."""

import pytest

from repro.analysis.analytic import AnalyticEstimate, estimate
from repro.apps import GREP, TESTDFSIO_WRITE, WORDCOUNT
from repro.core.architectures import hybrid, out_ofs, up_hdfs, up_ofs
from repro.errors import ConfigurationError
from repro.units import GB


class TestEstimate:
    def test_phases_positive_and_sum(self):
        result = estimate(up_ofs(), WORDCOUNT.make_job(4 * GB))
        assert result.setup > 0
        assert result.map_phase > 0
        assert result.shuffle_phase > 0
        assert result.reduce_phase >= 0
        assert result.execution_time == pytest.approx(
            result.setup + result.map_phase + result.shuffle_phase
            + result.reduce_phase
        )

    def test_monotone_in_input_size(self):
        small = estimate(out_ofs(), GREP.make_job(2 * GB)).execution_time
        large = estimate(out_ofs(), GREP.make_job(32 * GB)).execution_time
        assert large > small

    def test_wave_steps_visible(self):
        """One extra wave (crossing a slot multiple) bumps the map phase."""
        spec = up_ofs()  # 48 map slots
        just_fits = estimate(spec, GREP.make_job(48 * 128 * 2**20))
        one_more = estimate(spec, GREP.make_job(49 * 128 * 2**20))
        assert one_more.map_phase > just_fits.map_phase * 1.5

    def test_rejects_hybrid(self):
        with pytest.raises(ConfigurationError):
            estimate(hybrid(), WORDCOUNT.make_job(GB))

    def test_dfsio_write_has_trivial_shuffle(self):
        result = estimate(out_ofs(), TESTDFSIO_WRITE.make_job(30 * GB))
        assert result.shuffle_phase < 8.0
        assert result.reduce_phase < 8.0

    def test_matches_simulator_direction_on_architecture_choice(self):
        """The estimator agrees with the simulator about who wins at the
        extremes — the minimum bar for using it as a sanity oracle."""
        small = WORDCOUNT.make_job(2 * GB)
        assert (
            estimate(up_ofs(), small).execution_time
            < estimate(out_ofs(), small).execution_time
        )
        # The algebra's crossing sits later than the simulator's (no
        # jitter smoothing), so probe deep into scale-out territory.
        large = WORDCOUNT.make_job(256 * GB)
        assert (
            estimate(out_ofs(), large).execution_time
            < estimate(up_ofs(), large).execution_time
        )

    def test_hdfs_architectures_supported(self):
        result = estimate(up_hdfs(), GREP.make_job(4 * GB))
        assert result.execution_time > 0
