"""System-level property tests: invariants under randomized workloads.

Hypothesis drives random traces through full deployments and checks the
conservation laws and orderings that must hold whatever the workload:
every job completes exactly once, timestamps are ordered, slots and
counters return to zero, routing respects Algorithm 1, determinism.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.architectures import hybrid, out_ofs, thadoop
from repro.core.deployment import Deployment
from repro.core.scheduler import Decision, SizeAwareScheduler
from repro.mapreduce.job import JobSpec
from repro.units import GB, MB


@st.composite
def job_specs(draw, index):
    """A random but executable job."""
    size = draw(
        st.floats(min_value=1 * MB, max_value=64 * GB)
    )
    ratio = draw(st.floats(min_value=0.0, max_value=2.0))
    output_ratio = draw(st.floats(min_value=0.0, max_value=1.0))
    arrival = draw(st.floats(min_value=0.0, max_value=600.0))
    return JobSpec(
        job_id=f"h{index}",
        app="prop",
        input_bytes=size,
        shuffle_bytes=size * ratio,
        output_bytes=size * output_ratio,
        map_cpu_per_byte=draw(st.floats(min_value=0.0, max_value=0.1)) / MB,
        reduce_cpu_per_byte=draw(st.floats(min_value=0.0, max_value=0.01)) / MB,
        arrival_time=arrival,
    )


@st.composite
def traces(draw, max_jobs=8):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    return [draw(job_specs(i)) for i in range(n)]


class TestReplayInvariants:
    @given(jobs=traces())
    @settings(max_examples=25, deadline=None)
    def test_every_job_completes_exactly_once(self, jobs):
        deployment = Deployment(hybrid())
        results = deployment.run_trace(jobs)
        assert sorted(r.job_id for r in results) == sorted(j.job_id for j in jobs)

    @given(jobs=traces())
    @settings(max_examples=25, deadline=None)
    def test_timestamps_ordered_and_finite(self, jobs):
        deployment = Deployment(hybrid())
        for result in deployment.run_trace(jobs):
            assert result.submit_time <= result.first_map_start
            assert result.first_map_start <= result.last_map_end
            assert result.last_map_end <= result.last_shuffle_end
            assert result.last_shuffle_end <= result.end_time
            assert result.execution_time == result.execution_time  # not NaN

    @given(jobs=traces())
    @settings(max_examples=20, deadline=None)
    def test_trackers_drain_completely(self, jobs):
        deployment = Deployment(hybrid())
        deployment.run_trace(jobs)
        for tracker in deployment.trackers:
            assert tracker.active_jobs == 0
            assert tracker.queued_map_tasks == 0
            assert tracker.total_free_map_slots == tracker.cluster.total_map_slots
            assert tracker._committed_map_tasks == 0
            for node in tracker.nodes:
                assert node.active_tasks == 0

    @given(jobs=traces())
    @settings(max_examples=20, deadline=None)
    def test_routing_respects_algorithm1(self, jobs):
        deployment = Deployment(hybrid())
        results = deployment.run_trace(jobs)
        scheduler = SizeAwareScheduler()
        by_id = {j.job_id: j for j in jobs}
        for result in results:
            decision = scheduler.decide_job(by_id[result.job_id])
            expected = "scale-up" if decision is Decision.SCALE_UP else "scale-out"
            assert result.cluster == expected

    @given(jobs=traces(max_jobs=5))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_across_runs(self, jobs):
        def run():
            results = Deployment(hybrid()).run_trace(jobs)
            return sorted((r.job_id, r.execution_time) for r in results)

        assert run() == run()

    @given(jobs=traces(max_jobs=5))
    @settings(max_examples=15, deadline=None)
    def test_single_cluster_architectures_also_complete(self, jobs):
        for spec_fn in (out_ofs, thadoop):
            results = Deployment(spec_fn()).run_trace(jobs)
            assert len(results) == len(jobs)

    @given(jobs=traces(max_jobs=4))
    @settings(max_examples=10, deadline=None)
    def test_contention_rarely_helps(self, jobs):
        """A job inside a batch is essentially never faster than alone.

        Not *exactly* never: co-tenants perturb the most-free-slots
        placement rotation, which can luck a job's tasks onto
        less-contended nodes — a real phenomenon in real schedulers.
        The perturbation is bounded; material speedups from added load
        would indicate an accounting bug.
        """
        target = jobs[0]
        alone = (
            Deployment(out_ofs())
            .run_trace([target])[0]
            .execution_time
        )
        together = next(
            r.execution_time
            for r in Deployment(out_ofs()).run_trace(jobs)
            if r.job_id == target.job_id
        )
        assert together >= alone * 0.95 - 1e-6
