"""Failure injection: degraded nodes, and speculation as the remedy.

Hadoop's speculative execution exists for exactly one scenario — a node
that is alive but sick (failing disk, swapping, noisy neighbour) running
its tasks far slower than the rest.  These tests inject that scenario
and verify both the damage and the cure.
"""

import pytest

from repro.errors import ConfigurationError
from repro.simulator import Simulation

from tests.test_jobtracker import make_cluster, make_config, make_job, make_tracker


def make_victim_job():
    """CPU-dominated job (8 maps, ~8 s of map CPU per block, light
    shuffle) so node health, not storage, decides its fate."""
    from repro.units import MB

    return make_job(
        input_gb=1.0,
        shuffle_ratio=0.1,
        job_id="victim",
        map_cpu_per_byte=8.0 / (128 * MB),
    )


def run_with_degraded_node(speculative, slowdown=6.0, job=None):
    sim = Simulation()
    tracker = make_tracker(
        sim,
        cluster=make_cluster(count=4, map_slots=2, reduce_slots=2, cores=4),
        config=make_config(
            task_jitter=0.0,
            speculative_execution=speculative,
            speculative_slack=1.3,
        ),
    )
    tracker.nodes[0].degrade(slowdown)
    done = []
    tracker.submit(job or make_victim_job(), done.append)
    sim.run()
    return done[0], tracker


class TestDegradedNodes:
    def test_degrade_validation(self):
        sim = Simulation()
        tracker = make_tracker(sim)
        with pytest.raises(ConfigurationError):
            tracker.nodes[0].degrade(0.5)

    def test_effective_core_speed(self):
        sim = Simulation()
        tracker = make_tracker(sim)
        node = tracker.nodes[0]
        baseline = node.effective_core_speed()
        node.degrade(4.0)
        assert node.effective_core_speed() == pytest.approx(baseline / 4)

    def test_degraded_node_slows_the_job(self):
        healthy, _ = run_with_degraded_node(speculative=False, slowdown=1.0)
        sick, _ = run_with_degraded_node(speculative=False, slowdown=6.0)
        assert sick.execution_time > healthy.execution_time * 1.5

    def test_speculation_rescues_degraded_node_tasks(self):
        """The headline property: with a 6x-slow node, backups on healthy
        nodes cut the job's map phase substantially."""
        without, _ = run_with_degraded_node(speculative=False)
        with_spec, tracker = run_with_degraded_node(speculative=True)
        assert tracker.speculative_launches > 0
        assert with_spec.execution_time < without.execution_time * 0.8

    def test_speculation_cannot_beat_all_healthy(self):
        """Speculation mitigates, it does not create capacity: the
        rescued run is still no faster than an all-healthy run."""
        healthy, _ = run_with_degraded_node(speculative=False, slowdown=1.0)
        rescued, _ = run_with_degraded_node(speculative=True, slowdown=6.0)
        assert rescued.execution_time >= healthy.execution_time * 0.95

    def test_degraded_node_affects_multiple_jobs(self):
        sim = Simulation()
        tracker = make_tracker(
            sim,
            cluster=make_cluster(count=2, map_slots=2, reduce_slots=2, cores=4),
            config=make_config(task_jitter=0.0),
        )
        tracker.nodes[1].degrade(8.0)
        done = []
        for i in range(3):
            tracker.submit(make_job(input_gb=0.5, job_id=f"d{i}"), done.append)
        sim.run()
        assert len(done) == 3
