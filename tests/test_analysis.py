"""Tests for the analysis layer: metrics, report rendering, sweeps."""

import pytest

from repro.analysis.metrics import geometric_mean, normalize_series, speedup
from repro.analysis.report import render_series, render_table
from repro.analysis.sweep import run_isolated, sweep_architectures
from repro.apps import WORDCOUNT
from repro.core.architectures import up_hdfs, up_ofs
from repro.errors import ConfigurationError
from repro.units import GB


class TestNormalizeSeries:
    def test_reference_becomes_ones(self):
        series = {"a": [10.0, 20.0], "b": [20.0, 10.0]}
        normalized = normalize_series(series, "a")
        assert normalized["a"] == [1.0, 1.0]
        assert normalized["b"] == [2.0, 0.5]

    def test_none_propagates(self):
        series = {"a": [10.0, 10.0], "b": [None, 20.0]}
        normalized = normalize_series(series, "a")
        assert normalized["b"] == [None, 2.0]

    def test_none_in_reference_blanks_column(self):
        series = {"a": [10.0, None], "b": [20.0, 20.0]}
        normalized = normalize_series(series, "a")
        assert normalized["b"] == [2.0, None]

    def test_missing_reference(self):
        with pytest.raises(ConfigurationError):
            normalize_series({"a": [1.0]}, "zzz")

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            normalize_series({"a": [1.0], "b": [1.0, 2.0]}, "a")


class TestMetrics:
    def test_speedup(self):
        assert speedup(20.0, 10.0) == pytest.approx(1.0)

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            speedup(0.0, 10.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])


class TestRenderTable:
    def test_renders_aligned_columns(self):
        text = render_table(
            ["arch", "time"], [["up-OFS", 12.5], ["out-OFS", 120.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "arch" in lines[1] and "time" in lines[1]
        assert "up-OFS" in text and "120.0" in text

    def test_none_rendered_as_dash(self):
        text = render_table(["a"], [[None]])
        assert "-" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])


class TestRenderSeries:
    def test_one_row_per_size(self):
        text = render_series(
            [GB, 2 * GB], {"up": [1.0, 2.0], "out": [3.0, 4.0]}
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "1GB" in text and "2GB" in text

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_series([GB], {"up": [1.0, 2.0]})


class TestSweep:
    def test_run_isolated_returns_result(self):
        result = run_isolated(up_ofs(), WORDCOUNT, "1GB")
        assert result is not None
        assert result.execution_time > 0

    def test_run_isolated_infeasible_returns_none(self):
        assert run_isolated(up_hdfs(), WORDCOUNT, "200GB") is None

    def test_sweep_grid_shape(self):
        grid = sweep_architectures(
            (up_ofs(), up_hdfs()), WORDCOUNT, ["0.5GB", "1GB"]
        )
        assert set(grid) == {"up-OFS", "up-HDFS"}
        assert len(grid["up-OFS"].execution_times) == 2
        assert grid["up-OFS"].app == "wordcount"
        assert grid["up-OFS"].sizes == [0.5 * GB, 1 * GB]

    def test_sweep_phase_accessors(self):
        grid = sweep_architectures((up_ofs(),), WORDCOUNT, ["1GB"])
        sweep = grid["up-OFS"]
        assert sweep.map_phases[0] > 0
        assert sweep.shuffle_phases[0] >= 0
        assert sweep.reduce_phases[0] >= 0
