"""Cross-module integration tests: the library's main workflows end to end."""

import numpy as np
import pytest

from repro import (
    Deployment,
    GB,
    SizeAwareScheduler,
    WORDCOUNT,
    derive_cross_points,
    get_app,
    hybrid,
    out_ofs,
    thadoop,
    up_ofs,
)
from repro.core.crosspoint import estimate_cross_point
from repro.core.scheduler import Decision
from repro.workload.fb2009 import DAY, generate_fb2009


class TestMeasureThenSchedule:
    """The paper's full methodology: measure -> derive cross points ->
    schedule, all against the bundled simulator."""

    def test_derived_cross_points_route_sensibly(self):
        def measure(app_name, size):
            app = get_app(app_name)
            up = Deployment(up_ofs()).run_job(app.make_job(size), register_dataset=True).execution_time
            out = Deployment(out_ofs()).run_job(app.make_job(size), register_dataset=True).execution_time
            return up, out

        sizes = [s * GB for s in (2, 6, 12, 24, 48)]
        cross_points = derive_cross_points(measure, sizes)
        scheduler = SizeAwareScheduler(cross_points)

        # Tiny jobs go up, huge jobs go out, whatever the exact crossings.
        assert scheduler.decide(0.5 * GB, 1.6) is Decision.SCALE_UP
        assert scheduler.decide(200 * GB, 1.6) is Decision.SCALE_OUT
        # Derived thresholds must be ordered by shuffle ratio like the
        # paper's 32/16/10.
        assert (
            cross_points.high_ratio_cross
            >= cross_points.mid_ratio_cross
            >= cross_points.low_ratio_cross
        )

    def test_scheduler_decision_matches_measured_winner_away_from_cross(self):
        """Far from the cross point, Algorithm 1 must agree with direct
        measurement on the bundled model."""
        scheduler = SizeAwareScheduler()
        for size, expected in ((2 * GB, Decision.SCALE_UP),
                               (128 * GB, Decision.SCALE_OUT)):
            job = WORDCOUNT.make_job(size)
            assert scheduler.decide_job(job) is expected
            up = Deployment(up_ofs()).run_job(job, register_dataset=True).execution_time
            out = Deployment(out_ofs()).run_job(job, register_dataset=True).execution_time
            measured = Decision.SCALE_UP if up < out else Decision.SCALE_OUT
            assert measured is expected


class TestHybridEndToEnd:
    def test_shared_ofs_sees_both_clusters_traffic(self):
        deployment = Deployment(hybrid())
        small = WORDCOUNT.make_job("1GB", job_id="s")
        large = WORDCOUNT.make_job("40GB", job_id="l")
        deployment.submit(small)
        deployment.submit(large)
        deployment.run()
        ofs = deployment.storages[0]
        # Both jobs' input reads and output writes crossed the one array.
        expected_min = small.input_bytes + large.input_bytes
        assert ofs.array.bytes_completed > expected_min * 0.9

    def test_hybrid_vs_thadoop_on_a_mixed_burst(self):
        """A burst of small jobs plus one large job: the hybrid isolates
        the small jobs from the large job's waves."""
        trace_jobs = [WORDCOUNT.make_job("1GB", job_id=f"s{i}", arrival_time=0.0)
                      for i in range(10)]
        trace_jobs.insert(0, WORDCOUNT.make_job("48GB", job_id="big",
                                                arrival_time=0.0))

        def small_mean(spec):
            results = Deployment(spec).run_trace(trace_jobs)
            return np.mean(
                [r.execution_time for r in results if r.job_id != "big"]
            )

        assert small_mean(hybrid()) < small_mean(thadoop())


class TestTraceReplayEndToEnd:
    def test_replay_conserves_jobs_and_orders_time(self):
        trace = generate_fb2009(num_jobs=120, seed=5,
                                duration=DAY * 120 / 6000).shrink(5.0)
        deployment = Deployment(hybrid())
        results = deployment.run_trace(trace.to_jobspecs())
        assert len(results) == 120
        for result in results:
            assert result.end_time >= result.submit_time
            assert result.map_phase >= 0
            assert result.shuffle_phase >= 0
            assert result.reduce_phase >= 0

    def test_replay_deterministic(self):
        trace = generate_fb2009(num_jobs=40, seed=6).shrink(5.0)
        jobs = trace.to_jobspecs()

        def run():
            results = Deployment(hybrid()).run_trace(jobs)
            return [(r.job_id, r.execution_time) for r in results]

        assert run() == run()


class TestCrossPointConsistency:
    def test_simulated_curve_crosses_once_cleanly(self):
        """The normalized wordcount curve from the model is monotone
        enough for a single crossing in the measured range."""
        sizes = [s * GB for s in (2, 8, 16, 32, 64, 128)]
        up_times, out_times = [], []
        for size in sizes:
            job = WORDCOUNT.make_job(size)
            up_times.append(Deployment(up_ofs()).run_job(job, register_dataset=True).execution_time)
            out_times.append(Deployment(out_ofs()).run_job(job, register_dataset=True).execution_time)
        cross = estimate_cross_point(sizes, up_times, out_times)
        assert cross is not None
        assert sizes[0] < cross < sizes[-1]
