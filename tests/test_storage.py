"""Tests for the storage substrate: devices, HDFS and OrangeFS."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.simulator import Simulation
from repro.storage import HDFS, DiskDevice, OrangeFS, RamDisk
from repro.units import GB, MB


def make_devices(sim, n, bandwidth=100.0, capacity=1000.0):
    return [
        DiskDevice(sim, bandwidth=bandwidth, capacity=capacity, name=f"d{i}")
        for i in range(n)
    ]


class TestDiskDevice:
    def test_transfer_at_bandwidth(self):
        sim = Simulation()
        disk = DiskDevice(sim, bandwidth=100.0, capacity=1000.0)
        done = []
        disk.transfer(500.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_concurrent_transfers_share_bandwidth(self):
        sim = Simulation()
        disk = DiskDevice(sim, bandwidth=100.0, capacity=1000.0)
        done = []
        disk.transfer(500.0, lambda: done.append(sim.now))
        disk.transfer(500.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(10.0), pytest.approx(10.0)]

    def test_capacity_accounting(self):
        sim = Simulation()
        disk = DiskDevice(sim, bandwidth=100.0, capacity=1000.0)
        disk.allocate(600.0)
        assert disk.available == 400.0
        with pytest.raises(CapacityError):
            disk.allocate(500.0)
        disk.free(600.0)
        disk.allocate(900.0)

    def test_free_never_goes_negative(self):
        sim = Simulation()
        disk = DiskDevice(sim, bandwidth=100.0, capacity=1000.0)
        disk.free(50.0)
        assert disk.used == 0.0

    def test_rejects_negative_amounts(self):
        sim = Simulation()
        disk = DiskDevice(sim, bandwidth=100.0, capacity=1000.0)
        with pytest.raises(ConfigurationError):
            disk.allocate(-1.0)
        with pytest.raises(ConfigurationError):
            disk.free(-1.0)

    def test_ramdisk_is_a_device(self):
        sim = Simulation()
        ram = RamDisk(sim, bandwidth=2e9, capacity=252 * GB)
        done = []
        ram.transfer(2e9, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0)]


class TestHDFS:
    def test_read_hits_local_device(self):
        sim = Simulation()
        devices = make_devices(sim, 3)
        fs = HDFS(sim, devices, replication=2, access_latency=0.5)
        done = []
        fs.read(100.0, node_index=1, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5 + 1.0)]

    def test_write_replicates_to_peer(self):
        sim = Simulation()
        devices = make_devices(sim, 3)
        fs = HDFS(
            sim, devices, replication=2, access_latency=0.0, write_buffer_factor=1.0
        )
        done = []
        fs.write(100.0, node_index=0, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        # Two devices each moved 100 bytes at 100 B/s.
        moved = [d.resource.bytes_completed for d in devices]
        assert sorted(moved) == [0.0, 100.0, 100.0]

    def test_write_buffer_factor_speeds_writes(self):
        sim = Simulation()
        devices = make_devices(sim, 2)
        fs = HDFS(
            sim, devices, replication=1, access_latency=0.0, write_buffer_factor=4.0
        )
        done = []
        fs.write(400.0, node_index=0, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0)]  # 400/4 bytes at 100 B/s

    def test_replica_round_robin_skips_writer(self):
        sim = Simulation()
        devices = make_devices(sim, 2)
        fs = HDFS(
            sim, devices, replication=2, access_latency=0.0, write_buffer_factor=1.0
        )
        for _ in range(3):
            fs.write(10.0, node_index=0, on_complete=lambda: None)
        sim.run()
        # All replicas must land on device 1 (the only peer).
        assert devices[1].resource.bytes_completed == pytest.approx(30.0)

    def test_capacity_with_replication(self):
        sim = Simulation()
        devices = make_devices(sim, 2, capacity=1000.0)
        fs = HDFS(sim, devices, replication=2, usable_fraction=1.0)
        assert fs.capacity == pytest.approx(1000.0)
        fs.register_dataset(800.0)
        with pytest.raises(CapacityError):
            fs.register_dataset(300.0)
        fs.release_dataset(800.0)
        fs.register_dataset(1000.0)

    def test_paper_scale_up_ceiling(self):
        """2 x 91 GB disks, replication 2, 90% usable -> ~82 GB, matching
        the paper's 'cannot process jobs greater than 80GB'."""
        sim = Simulation()
        devices = make_devices(sim, 2, capacity=91 * GB)
        fs = HDFS(sim, devices, replication=2, usable_fraction=0.9)
        fs.register_dataset(80 * GB)
        fs.release_dataset(80 * GB)
        with pytest.raises(CapacityError):
            fs.register_dataset(85 * GB)

    def test_rejects_bad_config(self):
        sim = Simulation()
        devices = make_devices(sim, 2)
        with pytest.raises(ConfigurationError):
            HDFS(sim, [])
        with pytest.raises(ConfigurationError):
            HDFS(sim, devices, replication=0)
        with pytest.raises(ConfigurationError):
            HDFS(sim, devices, replication=3)
        with pytest.raises(ConfigurationError):
            HDFS(sim, devices, usable_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HDFS(sim, devices, write_buffer_factor=0.5)

    def test_read_from_unknown_node(self):
        sim = Simulation()
        fs = HDFS(sim, make_devices(sim, 2))
        with pytest.raises(ConfigurationError):
            fs.read(10.0, node_index=5, on_complete=lambda: None)


class TestOrangeFS:
    def make(self, sim, **overrides):
        defaults = dict(
            num_servers=8,
            server_bandwidth=400 * MB,
            access_latency=1.0,
            stream_cap=80 * MB,
            per_job_overhead=4.0,
            capacity=100 * GB,
        )
        defaults.update(overrides)
        return OrangeFS(sim, **defaults)

    def test_read_pays_latency_then_stream_cap(self):
        sim = Simulation()
        fs = self.make(sim)
        done = []
        fs.read(80 * MB, node_index=0, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0 + 1.0)]

    def test_aggregate_binds_under_load(self):
        sim = Simulation()
        fs = self.make(sim, num_servers=1, server_bandwidth=100.0, stream_cap=100.0,
                       access_latency=0.0)
        done = []
        for _ in range(4):
            fs.read(100.0, node_index=0, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert all(t == pytest.approx(4.0) for t in done)

    def test_stream_cap_override_takes_minimum(self):
        sim = Simulation()
        fs = self.make(sim, access_latency=0.0)
        done = []
        fs.read(
            80 * MB, 0, lambda: done.append(sim.now), stream_cap=40 * MB
        )
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_node_index_is_irrelevant(self):
        sim = Simulation()
        fs = self.make(sim)
        done = []
        fs.write(80 * MB, node_index=999, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1

    def test_capacity(self):
        sim = Simulation()
        fs = self.make(sim, capacity=10 * GB)
        fs.register_dataset(9 * GB)
        with pytest.raises(CapacityError):
            fs.register_dataset(2 * GB)
        fs.release_dataset(9 * GB)
        fs.register_dataset(10 * GB)

    def test_shared_array_couples_clusters(self):
        """Streams from different 'clusters' contend on the same array —
        the hybrid's storage coupling."""
        sim = Simulation()
        fs = self.make(sim, num_servers=1, server_bandwidth=100.0,
                       stream_cap=100.0, access_latency=0.0)
        times = {}
        fs.read(300.0, 0, lambda: times.setdefault("up", sim.now))
        fs.read(300.0, 40, lambda: times.setdefault("out", sim.now))
        sim.run()
        assert times["up"] == pytest.approx(6.0)
        assert times["out"] == pytest.approx(6.0)

    def test_rejects_bad_config(self):
        sim = Simulation()
        with pytest.raises(ConfigurationError):
            self.make(sim, num_servers=0)
        with pytest.raises(ConfigurationError):
            self.make(sim, server_bandwidth=0)
        with pytest.raises(ConfigurationError):
            self.make(sim, stream_cap=0)
        with pytest.raises(ConfigurationError):
            self.make(sim, access_latency=-1)
        with pytest.raises(ConfigurationError):
            self.make(sim, capacity=0)
