"""Mission control: frame schema, pure observation, and the dashboard.

The contracts pinned here:

* **frame schema** — versioned NDJSON envelope round-trips exactly;
  unknown fields and schema versions are rejected loudly; a truncated
  *final* line is tolerated (a live file is expected to end mid-append)
  while interior corruption raises;
* **pure observer** — a daemon run with a :class:`MetricsBus` attached
  produces byte-identical results to a bare run, and so does a
  bus-attached sweep;
* **reconciliation** — the last service frame's counters agree with
  ``metrics_dump()``;
* **surfaces** — ``GET /events`` tails frames (``?since=N`` resumes),
  ``GET /mission`` and ``repro mission`` emit self-contained HTML
  (no scripts, no external fetches — the profiler-dashboard rule).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.apps import GREP
from repro.core.architectures import out_ofs, up_ofs
from repro.mission import render_mission, write_mission
from repro.runner import PoolRunner, ResultCache, canonical_json, sweep_experiment
from repro.service import AdmissionPolicy, ReproService, serve
from repro.core.api import JobSubmission
from repro.telemetry.bus import (
    FRAME_SCHEMA,
    FrameError,
    KIND_RUNNER,
    KIND_SERVICE,
    MetricsBus,
    MetricsFrame,
    frames_from_text,
    read_frames,
    write_frames,
)
from repro.units import GB
from repro.workload.fb2009 import generate_fb2009


def make_trace(num_jobs: int = 20, seed: int = 2009):
    duration = 86400.0 * num_jobs / 6000.0
    return generate_fb2009(
        num_jobs=num_jobs, seed=seed, duration=duration
    ).shrink(5.0)


def submissions_for(trace):
    return [JobSubmission.from_tracejob(job) for job in trace.jobs]


def results_bytes(results) -> str:
    return json.dumps([dataclasses.asdict(r) for r in results], sort_keys=True)


class TestFrameSchema:
    def test_round_trip(self):
        frame = MetricsFrame(seq=3, kind=KIND_SERVICE, clock=12.5,
                             body={"pending": 2})
        assert MetricsFrame.from_wire(json.loads(frame.to_json())) == frame

    def test_unknown_field_rejected(self):
        wire = MetricsFrame(seq=1, kind="x", clock=0.0).to_wire()
        wire["surprise"] = 1
        with pytest.raises(FrameError, match="surprise"):
            MetricsFrame.from_wire(wire)

    def test_schema_version_skew_rejected(self):
        wire = MetricsFrame(seq=1, kind="x", clock=0.0).to_wire()
        wire["schema"] = FRAME_SCHEMA + 1
        with pytest.raises(FrameError, match="schema"):
            MetricsFrame.from_wire(wire)

    @pytest.mark.parametrize("field,value", [
        ("seq", -1), ("seq", 1.5), ("seq", True),
        ("kind", ""), ("kind", 7),
        ("clock", "noon"), ("clock", True),
        ("body", []),
    ])
    def test_malformed_fields_rejected(self, field, value):
        wire = MetricsFrame(seq=1, kind="x", clock=0.0).to_wire()
        wire[field] = value
        with pytest.raises(FrameError):
            MetricsFrame.from_wire(wire)

    def test_file_round_trip(self, tmp_path):
        frames = [MetricsFrame(seq=i + 1, kind=KIND_RUNNER, clock=float(i),
                               body={"done": i}) for i in range(5)]
        path = write_frames(frames, tmp_path / "frames.ndjson")
        assert read_frames(path) == frames

    def test_truncated_tail_is_tolerated(self, tmp_path):
        frames = [MetricsFrame(seq=1, kind="x", clock=0.0),
                  MetricsFrame(seq=2, kind="x", clock=1.0)]
        path = write_frames(frames, tmp_path / "frames.ndjson")
        text = path.read_text() + '{"schema": 1, "seq": 3, "ki'
        assert frames_from_text(text) == frames

    def test_interior_corruption_raises(self):
        good = MetricsFrame(seq=1, kind="x", clock=0.0).to_json()
        text = good + "\n{nope}\n" + good + "\n"
        with pytest.raises(FrameError, match="line 2"):
            frames_from_text(text)

    def test_bus_assigns_sequences_and_tails(self, tmp_path):
        bus = MetricsBus(tmp_path / "bus.ndjson", keep=3)
        for i in range(5):
            bus.publish(KIND_SERVICE, float(i), {"i": i})
        assert bus.last_seq == 5
        assert [f.seq for f in bus.tail(3)] == [4, 5]
        # The ring is bounded; the file keeps everything.
        assert [f.seq for f in bus.frames()] == [3, 4, 5]
        assert [f.seq for f in read_frames(tmp_path / "bus.ndjson")] == [
            1, 2, 3, 4, 5,
        ]


class TestPureObserver:
    """Attaching a bus never changes simulation results."""

    def test_daemon_run_is_byte_identical_with_bus(self):
        subs = submissions_for(make_trace())
        bare = ReproService("Hybrid")
        bussed = ReproService("Hybrid", bus=MetricsBus())
        for service in (bare, bussed):
            for sub in subs:
                service.submit(sub)
            service.drain()
        assert results_bytes(bare.results) == results_bytes(bussed.results)
        assert bussed.bus.last_seq > 0

    def test_sweep_is_byte_identical_with_bus(self, tmp_path):
        cells = sweep_experiment(
            [up_ofs(), out_ofs()], GREP, [1 * GB, 8 * GB]
        ).cells
        bare = PoolRunner(max_workers=1).run_cells(cells)
        bus = MetricsBus()
        bussed = PoolRunner(
            max_workers=1, cache=ResultCache(tmp_path / "cache"), bus=bus
        ).run_cells(cells)
        assert [canonical_json(o.payload) for o in bare] == [
            canonical_json(o.payload) for o in bussed
        ]
        # One runner frame per completed cell, clocks non-decreasing.
        frames = bus.frames()
        assert len(frames) == len(cells)
        assert all(f.kind == KIND_RUNNER for f in frames)
        assert frames[-1].body["done"] == len(cells)
        clocks = [f.clock for f in frames]
        assert clocks == sorted(clocks)


class TestReconciliation:
    def test_last_frame_matches_metrics_dump(self):
        bus = MetricsBus()
        service = ReproService("Hybrid", bus=bus)
        for sub in submissions_for(make_trace()):
            service.submit(sub)
        service.drain()
        body = bus.frames()[-1].body
        dump = service.metrics_dump()
        for key in ("accepted", "rejected", "clamped", "finished"):
            assert body[key] == dump["service"][key]
        assert body["pending"] == dump["service"]["pending"]
        assert bus.frames()[-1].clock == dump["service"]["clock"]
        assert body["routing"] == dump["routing"]
        assert body["health"] == dump["elastic"]["health"]
        assert body["healthy_fraction"] == dump["elastic"]["healthy_fraction"]
        assert sum(body["capacity"].values()) == (
            dump["elastic"]["schedulable_nodes"]
        )


class TestDashboard:
    def _frames(self):
        bus = MetricsBus()
        service = ReproService("Hybrid", bus=bus)
        for sub in submissions_for(make_trace()):
            service.submit(sub)
        service.drain()
        bus.publish(KIND_RUNNER, 1.5, {"cells": 10, "done": 4,
                                       "cache_hits": 2, "simulated": 2,
                                       "infeasible": 0, "failures": 0,
                                       "retries": 0, "timeouts": 0,
                                       "store": "sqlite"})
        return bus.frames()

    def test_self_contained_and_deterministic(self):
        frames = self._frames()
        html = render_mission(frames)
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert html == render_mission(frames)
        for needle in ("Queue depth", "Healthy capacity per member",
                       "Routing decisions", "Sweep completion"):
            assert needle in html

    def test_refresh_tag_is_opt_in(self):
        frames = self._frames()
        assert "http-equiv" not in render_mission(frames)
        assert 'http-equiv="refresh" content="3"' in render_mission(
            frames, refresh=3
        )

    def test_write_mission(self, tmp_path):
        path = write_mission(self._frames(), tmp_path / "mission.html")
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_empty_stream_renders(self):
        html = render_mission([])
        assert "no frames yet" in html


class TestHTTPSurface:
    @pytest.fixture()
    def server(self):
        service = ReproService(
            "Hybrid",
            policy=AdmissionPolicy(max_total_pending=40),
            bus=MetricsBus(),
        )
        httpd = serve(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            yield httpd
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def _get(self, url: str):
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, resp.read().decode("utf-8")

    def _submit(self, httpd, job_id="j1"):
        sub = JobSubmission(job_id=job_id, input_bytes=1 * GB)
        request = urllib.request.Request(
            httpd.url + "/jobs",
            data=json.dumps(sub.to_wire()).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10.0):
            pass

    def test_events_tail_and_since(self, server):
        self._submit(server, "j1")
        self._submit(server, "j2")
        status, body = self._get(server.url + "/events")
        assert status == 200
        frames = frames_from_text(body)
        assert [f.seq for f in frames] == [1, 2]
        assert all(f.kind == KIND_SERVICE for f in frames)
        _, tail = self._get(server.url + "/events?since=1")
        assert [f.seq for f in frames_from_text(tail)] == [2]

    def test_events_rejects_bad_since(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server.url + "/events?since=soon")
        assert err.value.code == 400

    def test_events_404_without_bus(self):
        service = ReproService("Hybrid")
        httpd = serve(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(httpd.url + "/events")
            assert err.value.code == 404
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_mission_endpoint_serves_live_dashboard(self, server):
        self._submit(server, "j1")
        status, html = self._get(server.url + "/mission")
        assert status == 200
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert 'http-equiv="refresh"' in html
