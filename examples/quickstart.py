#!/usr/bin/env python
"""Quickstart: run jobs on the hybrid scale-up/out Hadoop architecture.

Builds the paper's hybrid deployment (2 scale-up + 12 scale-out machines
sharing one OrangeFS), lets Algorithm 1 route a few jobs, and compares
against the traditional scale-out Hadoop baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    Deployment,
    SizeAwareScheduler,
    WORDCOUNT,
    GREP,
    TESTDFSIO_WRITE,
    hybrid,
    thadoop,
    format_duration,
    format_size,
)


def main() -> None:
    scheduler = SizeAwareScheduler()
    jobs = [
        WORDCOUNT.make_job("2GB"),      # small + shuffle-heavy -> scale-up
        WORDCOUNT.make_job("64GB"),     # large -> scale-out
        GREP.make_job("8GB"),           # below the 16 GB cross -> scale-up
        TESTDFSIO_WRITE.make_job("30GB"),  # map-intensive, large -> scale-out
    ]

    print("Algorithm 1 routing decisions:")
    for job in jobs:
        decision = scheduler.decide_job(job)
        print(
            f"  {job.app:16s} {format_size(job.input_bytes):>6s} "
            f"(shuffle/input={job.shuffle_input_ratio:.2g}) -> {decision.value}"
        )

    print("\nHybrid vs traditional Hadoop (each job run in isolation):")
    print(f"  {'job':28s} {'Hybrid':>10s} {'THadoop':>10s}")
    for job in jobs:
        hybrid_time = Deployment(hybrid()).run_job(job, register_dataset=True).execution_time
        thadoop_time = Deployment(thadoop()).run_job(job, register_dataset=True).execution_time
        label = f"{job.app} @ {format_size(job.input_bytes)}"
        print(
            f"  {label:28s} {format_duration(hybrid_time):>10s} "
            f"{format_duration(thadoop_time):>10s}"
        )


if __name__ == "__main__":
    main()
