#!/usr/bin/env python
"""Re-deriving scheduler cross points for a *different* deployment.

The paper is explicit that its 32/16/10 GB thresholds are specific to its
testbed and that "other designers can follow the same method to measure
the cross points in their systems".  This example does exactly that for
a hypothetical deployment with beefier scale-out nodes (16 cores instead
of 8): it sweeps the three representative applications on both clusters,
estimates where the normalized curves cross, and builds a scheduler from
the result.

Run:  python examples/crosspoint_analysis.py   (~30 s)
"""

from dataclasses import replace

from repro import (
    Deployment,
    GB,
    SizeAwareScheduler,
    derive_cross_points,
    format_size,
    get_app,
)
from repro.cluster import SlotConfig, specs
from repro.core.architectures import ArchitectureSpec, ClusterRole


def beefy_out_cluster(count: int = 12):
    """Scale-out nodes with 16 cores (12m/4r slots) instead of 8."""
    machine = replace(specs.SCALE_OUT_NODE, cores=16, price=2.0)
    return replace(
        specs.scale_out_cluster(count),
        machine=machine,
        slots=SlotConfig(map_slots=12, reduce_slots=4),
    )


def make_measure():
    """measure(app, size) -> (scale-up, scale-out) execution times."""
    up_spec = ArchitectureSpec(
        name="up", members=(ClusterRole(specs.scale_up_cluster(), "up"),),
        storage="ofs",
    )
    out_spec = ArchitectureSpec(
        name="out", members=(ClusterRole(beefy_out_cluster(), "out"),),
        storage="ofs",
    )

    def measure(app_name: str, size: float):
        app = get_app(app_name)
        up_time = Deployment(up_spec).run_job(app.make_job(size), register_dataset=True).execution_time
        out_time = Deployment(out_spec).run_job(app.make_job(size), register_dataset=True).execution_time
        return up_time, out_time

    return measure


def main() -> None:
    sizes = [s * GB for s in (1, 2, 4, 8, 12, 16, 24, 32, 48, 64)]
    cross_points = derive_cross_points(make_measure(), sizes)

    print("Derived cross points for the 16-core scale-out deployment:")
    print(f"  shuffle/input > 1 :  {format_size(cross_points.high_ratio_cross)}")
    print(f"  0.4 .. 1          :  {format_size(cross_points.mid_ratio_cross)}")
    print(f"  shuffle/input <0.4:  {format_size(cross_points.low_ratio_cross)}")
    print("\n(paper testbed: 32GB / 16GB / 10GB — beefier scale-out nodes")
    print(" pull every threshold down, as the method predicts)")

    scheduler = SizeAwareScheduler(cross_points)
    for app_name, size in (("wordcount", 16 * GB), ("grep", 8 * GB)):
        job = get_app(app_name).make_job(size)
        decision = scheduler.decide_job(job)
        print(f"\n{app_name} @ {format_size(size)} -> {decision.value}")


if __name__ == "__main__":
    main()
