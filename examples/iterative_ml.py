#!/usr/bin/env python
"""Iterative jobs on the hybrid: the router switches clusters mid-algorithm.

Many analytics algorithms are chains of MapReduce rounds over *shrinking*
data — candidate pruning, agglomerative clustering, frequent-itemset
mining.  Early rounds are big (scale-out territory); late rounds are
small (scale-up territory).  On the hybrid architecture with a shared
remote file system, consecutive rounds can run on different clusters
with no data migration — exactly the flexibility the paper's design
argues for.

This example runs a pruning pipeline whose working set halves each
round and shows Algorithm 1 moving it from the scale-out cluster to the
scale-up cluster at the cross point.

Run:  python examples/iterative_ml.py
"""

from repro import Deployment, format_duration, format_size, hybrid
from repro.apps.base import AppProfile
from repro.units import GB

# One pruning round: moderate shuffle (candidate re-partitioning).
PRUNE_ROUND = AppProfile(
    name="prune-round",
    shuffle_ratio=0.6,
    output_ratio=0.5,     # survivors written back for the next round
    map_cpu_per_mb=0.05,
    reduce_cpu_per_mb=0.01,
)

INITIAL_SIZE = 96 * GB
ROUNDS = 6


def main() -> None:
    deployment = Deployment(hybrid())
    size = INITIAL_SIZE
    total = 0.0
    print(f"pruning pipeline: {ROUNDS} rounds, working set halves each round")
    print(f"(cross point for shuffle/input 0.6: "
          f"{format_size(16 * GB)} — Algorithm 1's middle band)\n")
    previous_cluster = None
    for round_number in range(ROUNDS):
        job = PRUNE_ROUND.make_job(size, job_id=f"round-{round_number}")
        result = deployment.run_job(job, register_dataset=True)
        total += result.execution_time
        switch = ""
        if previous_cluster and result.cluster != previous_cluster:
            switch = "   <-- router switched clusters (no data migration:"
            switch += " both mount the same OFS)"
        print(
            f"  round {round_number}: {format_size(size):>6s} on "
            f"{result.cluster:9s} {format_duration(result.execution_time):>8s}"
            f"{switch}"
        )
        previous_cluster = result.cluster
        size /= 2

    print(f"\ntotal pipeline time: {format_duration(total)}")
    print("On a classic split deployment the mid-pipeline hand-off would")
    print("require copying the surviving candidates between file systems;")
    print("the shared remote store makes the switch free.")


if __name__ == "__main__":
    main()
