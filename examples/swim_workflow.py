#!/usr/bin/env python
"""End-to-end workflow on a SWIM-format trace file.

The Facebook traces the paper replays are distributed in SWIM's text
format.  This example runs the complete production workflow against the
bundled sample: load the SWIM file, apply the paper's 5x shrink, replay
it on the hybrid, render a timeline, and ask the capacity advisor
whether the paper's 2+12 machine split was right for this workload.

Run:  python examples/swim_workflow.py
"""

from pathlib import Path

from repro.analysis.timeline import phase_summary, render_timeline
from repro.core.advisor import advise_split
from repro.core.architectures import hybrid
from repro.core.deployment import Deployment
from repro.workload.swim import load_swim

DATA = Path(__file__).parent.parent / "data" / "fb2009_sample_600.swim.tsv"


def main() -> None:
    trace = load_swim(DATA).shrink(5.0).head(120)
    jobs = trace.to_jobspecs()
    print(f"loaded {len(jobs)} jobs from {DATA.name} (5x shrink applied)\n")

    deployment = Deployment(hybrid())
    results = deployment.run_trace(jobs)
    print(render_timeline(results, width=100, max_jobs=18))
    totals = phase_summary(results)
    print(
        f"\nphase totals (s): queued {totals['queued']:.0f}, "
        f"map {totals['map']:.0f}, shuffle {totals['shuffle']:.0f}, "
        f"reduce {totals['reduce']:.0f}"
    )

    print("\nasking the advisor about the machine split (objective: p50)...")
    advice = advise_split(jobs, budget=24.0, objective="p50",
                          candidates=[(0, 24), (1, 18), (2, 12), (3, 6)])
    for outcome in advice.outcomes:
        marker = " <- recommended" if outcome is advice.best else ""
        print(f"  {outcome.name:10s} p50 {outcome.p50:7.1f}s "
              f"p99 {outcome.p99:8.1f}s{marker}")


if __name__ == "__main__":
    main()
