#!/usr/bin/env python
"""Failure injection and speculative execution on the hybrid model.

Degrades one scale-out node (a sick-but-alive machine: failing disk,
swap storm) and shows what Hadoop's speculative execution buys: backup
copies of straggling maps launched on idle healthy slots.

Run:  python examples/straggler_mitigation.py
"""

from repro import Deployment, GREP, format_duration, out_ofs
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.units import MB
from repro.apps.base import AppProfile

# A CPU-heavy analytics pass: node health dominates its task times.
ANALYTICS = AppProfile(
    name="analytics-pass",
    shuffle_ratio=0.1,
    output_ratio=0.02,
    map_cpu_per_mb=0.08,
    reduce_cpu_per_mb=0.002,
)


def run(slowdown: float, speculative: bool) -> tuple[float, int]:
    calibration = DEFAULT_CALIBRATION.with_options()
    deployment = Deployment(out_ofs(), calibration=calibration)
    tracker = deployment.trackers[0]
    # Patch the tracker's config for the experiment (speculation knobs).
    tracker.config = tracker.config.with_options(
        speculative_execution=speculative, speculative_slack=1.3
    )
    tracker.nodes[0].degrade(slowdown)
    result = deployment.run_job(ANALYTICS.make_job("4GB"), register_dataset=True)
    return result.execution_time, tracker.speculative_launches


def main() -> None:
    healthy, _ = run(slowdown=1.0, speculative=False)
    print(f"all nodes healthy:              {format_duration(healthy)}")

    sick, _ = run(slowdown=8.0, speculative=False)
    print(f"one node 8x slow, no backups:   {format_duration(sick)} "
          f"({sick / healthy:.1f}x worse)")

    rescued, launches = run(slowdown=8.0, speculative=True)
    print(f"one node 8x slow, speculation:  {format_duration(rescued)} "
          f"({launches} backup copies launched)")

    saved = (sick - rescued) / sick
    print(f"\nspeculation recovered {saved:.0%} of the straggler damage —")
    print("backups only help when a node is pathologically slow; on a")
    print("healthy cluster they cost a little and win nothing (see")
    print("benchmarks/out/ablation_* and tests/test_speculation.py).")


if __name__ == "__main__":
    main()
