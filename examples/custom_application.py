#!/usr/bin/env python
"""Modelling your own application and deciding where to run it.

Defines a custom application profile (a log-sessionization job: moderate
shuffle, CPU-light maps), asks Algorithm 1 where each instance should
run, verifies the decision by measuring both clusters, and shows what
happens when the shuffle/input ratio is *unknown* (the scheduler falls
back to the conservative map-intensive threshold).

Run:  python examples/custom_application.py
"""

from repro import (
    Deployment,
    GB,
    SizeAwareScheduler,
    format_duration,
    format_size,
    out_ofs,
    up_ofs,
)
from repro.apps.base import AppProfile

SESSIONIZE = AppProfile(
    name="sessionize",
    shuffle_ratio=0.8,      # one session record per log line, grouped by user
    output_ratio=0.3,
    map_cpu_per_mb=0.03,    # cheap parsing
    reduce_cpu_per_mb=0.01, # session stitching
)


def main() -> None:
    scheduler = SizeAwareScheduler()

    print(f"{SESSIONIZE.name}: shuffle/input={SESSIONIZE.shuffle_ratio}")
    print(f"cross point for this ratio: "
          f"{format_size(scheduler.cross_points.cross_for_ratio(SESSIONIZE.shuffle_ratio))}\n")

    for size in (4 * GB, 12 * GB, 24 * GB, 64 * GB):
        job = SESSIONIZE.make_job(size)
        decision = scheduler.decide_job(job)
        up_time = Deployment(up_ofs()).run_job(job, register_dataset=True).execution_time
        out_time = Deployment(out_ofs()).run_job(job, register_dataset=True).execution_time
        actual_best = "scale-up" if up_time < out_time else "scale-out"
        agreement = "agrees" if decision.value == actual_best else "disagrees"
        print(
            f"  {format_size(size):>6s}: Algorithm 1 -> {decision.value:9s} "
            f"(measured: up {format_duration(up_time)}, "
            f"out {format_duration(out_time)} -> {actual_best}; {agreement})"
        )

    print(
        "\nDisagreements near the band edge are expected: Algorithm 1 uses\n"
        "three coarse ratio bands, and a 0.8-ratio app crosses later than\n"
        "the band's 16GB threshold.  The paper notes a 'fine-grained ratio\n"
        "partition ... would make the algorithm more accurate'; use\n"
        "repro.core.crosspoint.derive_cross_points to calibrate bands that\n"
        "match your own applications."
    )

    print("\nWith the ratio withheld, the scheduler plays it safe:")
    job = SESSIONIZE.make_job(12 * GB)
    known = scheduler.decide_job(job, ratio_known=True)
    unknown = scheduler.decide_job(job, ratio_known=False)
    print(f"  12GB, ratio known   -> {known.value}")
    print(f"  12GB, ratio unknown -> {unknown.value} "
          "(avoids sending a possibly-large job to the small cluster)")


if __name__ == "__main__":
    main()
