#!/usr/bin/env python
"""Capacity planning with the hybrid model: how should a fixed budget be
split between scale-up and scale-out machines?

The paper fixes 2 scale-up + 12 scale-out (equal cost to 24 scale-out)
but never asks whether that split is the right one.  The library's
capacity advisor (repro.core.advisor) makes the what-if cheap: for each
equal-cost mix it replays the same workload sample and reports the
distribution of job execution times.

Run:  python examples/capacity_planning.py   (~1 min)
"""

from repro.analysis.report import render_table
from repro.core.advisor import advise_split
from repro.workload.fb2009 import DAY, generate_fb2009

NUM_JOBS = 400
BUDGET = 24.0  # in scale-out-node price units; the paper's fleet


def main() -> None:
    trace = generate_fb2009(
        num_jobs=NUM_JOBS, seed=77, duration=DAY * NUM_JOBS / 6000
    ).shrink(5.0)
    jobs = trace.to_jobspecs()

    for objective in ("p50", "p99"):
        advice = advise_split(jobs, budget=BUDGET, objective=objective)
        rows = [
            [o.name, o.mean, o.p50, o.p99, o.max]
            for o in advice.outcomes
        ]
        print(
            render_table(
                ["mix (equal cost)", "mean (s)", "p50 (s)", "p99 (s)", "max (s)"],
                rows,
                title=f"objective = {objective}",
            )
        )
        print(f"recommended: {advice.best.name}\n")

    print(
        "Reading the table: all-scale-out wastes the small-job majority\n"
        "(median suffers), all-scale-up starves the large-job tail (p99/max\n"
        "suffer); mixes in between — the paper picks 2up+12out — trade the\n"
        "two off.  Rerun with your own trace via repro.core.advisor."
    )


if __name__ == "__main__":
    main()
