#!/usr/bin/env python
"""The Section V evaluation in miniature: replay FB-2009 on three
architectures and compare execution-time CDFs (the paper's Fig. 10).

Generates the synthesized Facebook workload, applies the paper's 5x size
shrink, replays it by arrival time on Hybrid, THadoop and RHadoop, and
prints percentile tables for the scale-up-job and scale-out-job classes.

Run:  python examples/facebook_trace_replay.py [num_jobs]   (default 600)
"""

import sys

import numpy as np

from repro.analysis.figures import fig10_trace_replay
from repro.analysis.report import render_table
from repro.workload.cdf import quantile


def main(num_jobs: int = 600) -> None:
    print(f"replaying {num_jobs} FB-2009 jobs (5x shrink) on 3 architectures...")
    outcome = fig10_trace_replay(num_jobs=num_jobs)

    for label, attr in (
        ("Fig 10(a): scale-up jobs", "scale_up_times"),
        ("Fig 10(b): scale-out jobs", "scale_out_times"),
    ):
        rows = []
        for name, replay in outcome.items():
            times = getattr(replay, attr)
            p50, p90, p99 = quantile(times, [0.5, 0.9, 0.99])
            rows.append([name, len(times), p50, p90, p99, float(np.max(times))])
        print()
        print(
            render_table(
                ["architecture", "jobs", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)"],
                rows,
                title=label,
            )
        )

    hybrid_max = outcome["Hybrid"].max_scale_up_time
    thadoop_max = outcome["THadoop"].max_scale_up_time
    rhadoop_max = outcome["RHadoop"].max_scale_up_time
    print(
        f"\nmax scale-up-job execution time: Hybrid {hybrid_max:.1f}s, "
        f"THadoop {thadoop_max:.1f}s, RHadoop {rhadoop_max:.1f}s"
    )
    print("(paper: 48.53s / 83.37s / 68.17s — Hybrid lowest in both)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
