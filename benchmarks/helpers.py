"""Shared rendering/assertion helpers for the figure benchmarks."""

from __future__ import annotations

from typing import Dict

from repro.analysis.figures import FigureData
from repro.analysis.report import render_series


def render_panels(panels: Dict[str, FigureData]) -> str:
    """Render the four phase panels of a Fig. 5/6/9-style measurement."""
    blocks = []
    for key in ("execution", "map", "shuffle", "reduce"):
        panel = panels[key]
        blocks.append(render_series(panel.sizes, panel.series, title=panel.title))
    return "\n\n".join(blocks)


def series_at(panel: FigureData, size: float) -> Dict[str, float]:
    """One column of a panel: {architecture: value} at a given size."""
    index = panel.sizes.index(size)
    return {name: values[index] for name, values in panel.series.items()}


def assert_small_size_ordering(execution: FigureData, size: float) -> None:
    """The paper's small-input ranking: up-HDFS < up-OFS < out-HDFS <
    out-OFS in execution time."""
    at = series_at(execution, size)
    assert at["up-HDFS"] < at["up-OFS"], at
    assert at["up-OFS"] < at["out-HDFS"], at
    assert at["out-HDFS"] < at["out-OFS"], at


def assert_large_size_ordering(
    execution: FigureData, size: float, middle_tolerance: float = 0.04
) -> None:
    """The paper's large-input ranking: out-OFS < out-HDFS < up-OFS <
    up-HDFS (up-HDFS may be infeasible = None, which also satisfies it).

    out-HDFS and up-OFS sit within a few percent of each other around the
    cross points (as they do in the paper's own panels), so the middle
    comparison carries ``middle_tolerance``; pass 0 to assert strictly
    (appropriate at 128 GB and beyond).
    """
    at = series_at(execution, size)
    assert at["out-OFS"] < at["out-HDFS"], at
    assert at["out-HDFS"] < at["up-OFS"] * (1 + middle_tolerance), at
    if at["up-HDFS"] is not None:
        assert at["up-OFS"] < at["up-HDFS"], at
