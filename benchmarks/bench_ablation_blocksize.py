"""Ablation: HDFS block / OFS stripe size (Section II-D).

The paper fixes 128 MB "to match the setting in the current industry
clusters" and notes a block size "cannot be too small or too large":
small blocks multiply per-task overhead; oversized blocks starve the
cluster of parallelism.  This bench sweeps the size and checks both
failure directions around the 128 MB choice.
"""

from repro.analysis.report import render_table
from repro.apps import GREP
from repro.core.architectures import out_ofs
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.deployment import Deployment
from repro.units import GB, MB, blocks_for

BLOCK_SIZES_MB = (16, 64, 128, 256, 1024, 4096)


def run_block_sweep():
    job = GREP.make_job(16 * GB)
    rows = []
    for block_mb in BLOCK_SIZES_MB:
        cal = DEFAULT_CALIBRATION.with_options(block_size=block_mb * MB)
        result = Deployment(out_ofs(), calibration=cal).run_job(job, register_dataset=True)
        num_tasks = blocks_for(job.input_bytes, block_mb * MB)
        rows.append([f"{block_mb}MB", num_tasks, result.execution_time])
    return rows


def test_ablation_block_size(benchmark, artifact):
    rows = benchmark.pedantic(run_block_sweep, rounds=1, iterations=1)
    artifact(
        "ablation_blocksize",
        render_table(
            ["block size", "map tasks", "execution (s)"],
            rows,
            title="block-size ablation: grep 16GB on out-OFS",
        ),
    )
    times = {row[0]: row[2] for row in rows}
    # Both extremes lose to the paper's 128 MB setting.
    assert times["128MB"] < times["16MB"], "tiny blocks drown in task overhead"
    assert times["128MB"] < times["4096MB"], "huge blocks kill parallelism"
