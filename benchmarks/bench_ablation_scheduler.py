"""Ablation: what the size-aware scheduler actually buys.

Replays the same FB-2009 sample on the hybrid hardware under five
routing policies:

* ``algorithm1``   — the paper's scheduler (ratio bands + cross points);
* ``size-only``    — a single 10 GB threshold, ignoring the ratio;
* ``always-up`` / ``always-out`` — degenerate routings;
* ``load-balanced``— Algorithm 1 plus the future-work backlog diverter;
* ``fine-grained`` — the continuous ratio partition the paper suggests
  as future refinement (repro.core.finegrained).

Algorithm 1 must beat both degenerate policies on mean execution time,
and the ratio-aware bands must not lose to the size-only threshold.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.architectures import hybrid
from repro.core.deployment import Deployment, algorithm1_router
from repro.core.finegrained import InterpolatingScheduler
from repro.core.loadbalance import LoadBalancingRouter
from repro.core.scheduler import CrossPoints, SizeAwareScheduler
from repro.units import GB
from repro.workload.fb2009 import DAY, generate_fb2009

NUM_JOBS = 400


def make_policies():
    size_only = CrossPoints(
        high_ratio_cross=10 * GB, mid_ratio_cross=10 * GB, low_ratio_cross=10 * GB
    )
    return {
        "algorithm1": algorithm1_router(),
        "size-only-10GB": algorithm1_router(SizeAwareScheduler(size_only)),
        "always-up": lambda job, dep: dep.spec.role_index("up"),
        "always-out": lambda job, dep: dep.spec.role_index("out"),
        "load-balanced": LoadBalancingRouter(),
        "fine-grained": algorithm1_router(InterpolatingScheduler()),
    }


def run_policy_sweep():
    trace = generate_fb2009(
        num_jobs=NUM_JOBS, seed=2009, duration=DAY * NUM_JOBS / 6000
    ).shrink(5.0)
    jobs = trace.to_jobspecs()
    rows = []
    for name, router in make_policies().items():
        deployment = Deployment(hybrid(), router=router)
        results = deployment.run_trace(jobs)
        times = np.array([r.execution_time for r in results])
        rows.append(
            [name, float(np.mean(times)), float(np.median(times)),
             float(np.percentile(times, 99)), float(times.max())]
        )
    return rows


def test_ablation_scheduler_policies(benchmark, artifact):
    rows = benchmark.pedantic(run_policy_sweep, rounds=1, iterations=1)
    artifact(
        "ablation_scheduler",
        render_table(
            ["policy", "mean (s)", "p50 (s)", "p99 (s)", "max (s)"],
            rows,
            title=f"scheduler ablation: {NUM_JOBS}-job FB-2009 sample on hybrid hardware",
        ),
    )
    means = {row[0]: row[1] for row in rows}
    assert means["algorithm1"] < means["always-up"]
    assert means["algorithm1"] < means["always-out"]
    # The ratio-aware bands should not lose to a flat size threshold.
    assert means["algorithm1"] <= means["size-only-10GB"] * 1.02
    # The load balancer may only help (it falls back to Algorithm 1).
    assert means["load-balanced"] <= means["algorithm1"] * 1.05
