"""Elastic-membership bench: churn response, the numbers behind docs/ELASTIC.md.

Replays a densified FB-2009 slice on RHadoop while a crash-churn fault
plan removes half the cluster mid-trace, and compares three responses:

* **static** — the seed behaviour: no elasticity, survivors absorb the
  backlog;
* **autoscaled** — a :class:`~repro.elastic.autoscale.ThresholdAutoscaler`
  joins replacement nodes reactively when queue-depth backlog builds;
* **browned_out** — the always-on service
  (:class:`~repro.service.api.ReproService`) with brownout watermarks:
  no extra capacity, but degraded admission sheds the largest-shuffle
  jobs so the survivors serve the rest with less contention.

Reported per configuration: makespan, total runtime, completed/shed
counts, and *regret* — the per-job slowdown versus the same job's
healthy (no-churn) runtime, summed over completed jobs.

Acceptance bars, asserted on every run:

* the autoscaled makespan strictly beats the static one (the ISSUE's
  head-to-head criterion);
* every admitted job has exactly one result in every configuration
  (the chaos harness's no-loss/no-double-completion invariant).

Usage::

    python benchmarks/bench_elastic.py
    python benchmarks/bench_elastic.py --jobs 120 --budget 300
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.api import JobSubmission
from repro.core.architectures import rhadoop
from repro.core.deployment import Deployment
from repro.elastic import BrownoutConfig, ThresholdAutoscaler, check_invariants
from repro.faults.plan import NODE_CRASH, FaultEvent, FaultPlan
from repro.service import ReproService
from repro.units import GB
from repro.workload.fb2009 import DAY, generate_fb2009

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_ELASTIC.json"

SEED = 2009
#: Arrival densification over the rate-preserving FB-2009 window: the
#: replay must saturate the survivors or node loss costs nothing.
DENSIFY = 6.0
#: Nodes crashed (of RHadoop's 12), staggered from 10% of the window.
CRASHES = 6


def churn_plan(duration: float) -> FaultPlan:
    events = tuple(
        FaultEvent(
            time=duration * 0.10 + 15.0 * i,
            kind=NODE_CRASH,
            member="out",
            node=11 - i,
        )
        for i in range(CRASHES)
    )
    return FaultPlan(events, seed=0, name=f"bench-churn-{CRASHES}x")


def summarize(results, healthy_times, job_ids):
    completed = [r for r in results if not r.failed]
    regret = sum(
        r.execution_time - healthy_times[r.job_id]
        for r in completed
        if r.job_id in healthy_times
    )
    return {
        "completed": len(completed),
        "failed": len(results) - len(completed),
        "makespan": max((r.end_time for r in completed), default=0.0),
        "total_runtime": sum(r.execution_time for r in completed),
        "regret": regret,
        "invariant_violations": check_invariants(job_ids, results),
    }


def run_deployment(jobs, plan, autoscaler=None):
    deployment = Deployment(rhadoop(), fault_plan=plan, autoscaler=autoscaler)
    results = deployment.run_trace(jobs)
    deployment.fail_unfinished()
    return results, deployment


def run_service(trace, plan, brownout):
    """Stream the trace through the daemon so admission sees the health
    the cluster has *at each arrival* (batch submission at clock 0 would
    never shed: the crashes haven't fired yet)."""
    service = ReproService("RHadoop", fault_plan=plan, brownout=brownout)
    admitted = []
    for job in trace.jobs:
        service.advance_until(job.arrival_time)
        status = service.submit(
            JobSubmission(
                job_id=job.job_id,
                input_bytes=job.input_bytes,
                shuffle_bytes=job.shuffle_bytes,
                output_bytes=job.output_bytes,
                arrival_time=job.arrival_time,
            )
        )
        if status.accepted:
            admitted.append(job.job_id)
    service.drain()
    service.deployment.fail_unfinished()
    return service, admitted


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=200,
        help="FB-2009 trace jobs to replay (default 200)",
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="assert total wall-clock (seconds) stays under this",
    )
    parser.add_argument(
        "--report", default=str(REPORT),
        help=f"output path (default: {REPORT})",
    )
    args = parser.parse_args(argv)

    duration = DAY * args.jobs / 6000.0 / DENSIFY
    trace = generate_fb2009(args.jobs, seed=SEED, duration=duration).shrink(5.0)
    jobs = trace.to_jobspecs()
    job_ids = [j.job_id for j in jobs]
    plan = churn_plan(duration)
    autoscaler = ThresholdAutoscaler(
        min_nodes=12, max_nodes=24, scale_up_backlog=0.5,
        cooldown=45.0, step=2,
    )
    # Tighter-than-default watermark and shed thresholds: losing 6 of
    # RHadoop's 24 nodes lands exactly on the default 0.75 watermark
    # (strict comparison → still "ok"), and after the 5x shrink the
    # trace has few >32 GB shuffles left.  A shed knob that never
    # engages benches nothing.
    brownout = BrownoutConfig(
        degraded_below=0.8,
        degraded_shed_shuffle_over=2 * GB,
        browned_out_shed_shuffle_over=0.25 * GB,
    )

    t0 = time.perf_counter()
    healthy_results, _ = run_deployment(jobs, None)
    healthy_times = {
        r.job_id: r.execution_time for r in healthy_results if not r.failed
    }
    static_results, _ = run_deployment(jobs, plan)
    auto_results, auto_deployment = run_deployment(jobs, plan, autoscaler)
    service, admitted = run_service(trace, plan, brownout)
    wall = time.perf_counter() - t0

    configs = {
        "healthy": summarize(healthy_results, healthy_times, job_ids),
        "static": summarize(static_results, healthy_times, job_ids),
        "autoscaled": summarize(auto_results, healthy_times, job_ids),
        "browned_out": summarize(
            service.deployment.results, healthy_times, admitted
        ),
    }
    configs["autoscaled"]["autoscaler"] = auto_deployment.autoscaler.summary()
    configs["browned_out"]["shed"] = args.jobs - len(admitted)
    configs["browned_out"]["admitted"] = len(admitted)

    for name, row in configs.items():
        print(
            f"{name:<12} makespan {row['makespan']:8.1f}s  "
            f"total {row['total_runtime']:9.1f}s  "
            f"regret {row['regret']:9.1f}s  "
            f"completed {row['completed']}",
            flush=True,
        )

    for name, row in configs.items():
        assert not row["invariant_violations"], (
            f"{name}: {row['invariant_violations']}"
        )
    assert configs["autoscaled"]["makespan"] < configs["static"]["makespan"], (
        "autoscaled replay must beat the static cluster under churn: "
        f"{configs['autoscaled']['makespan']:.1f}s vs "
        f"{configs['static']['makespan']:.1f}s"
    )
    print(
        f"autoscaled beats static by "
        f"{configs['static']['makespan'] - configs['autoscaled']['makespan']:.1f}s "
        f"makespan ({configs['browned_out']['shed']} job(s) shed while degraded)",
        flush=True,
    )

    report = {
        "bench": {
            "seed": SEED,
            "jobs": args.jobs,
            "densify": DENSIFY,
            "crashes": CRASHES,
            "wall_seconds": round(wall, 2),
        },
        "configs": configs,
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
    }
    Path(args.report).write_text(json.dumps(report, indent=1) + "\n")
    print(f"report -> {args.report}  (total {wall:.1f}s)", flush=True)

    if args.budget is not None and wall > args.budget:
        print(
            f"FAIL: wall-clock {wall:.1f}s exceeded budget {args.budget:.0f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
