"""Fig. 7: cross points of Wordcount (~32 GB) and Grep (~16 GB).

Normalized out-OFS execution time (by up-OFS) against input size; the
crossing of 1.0 is the size at which scale-out overtakes scale-up.  The
paper reads 32 GB for Wordcount and 16 GB for Grep, and argues the gap
comes from the shuffle/input ratio (1.6 vs 0.4): more shuffle keeps the
scale-up cluster's RAMdisk advantage relevant for longer.
"""

from repro.analysis.asciichart import render_chart
from repro.analysis.figures import fig7_crosspoints
from repro.analysis.report import render_series
from repro.units import GB, format_size


def test_fig7_crosspoints(benchmark, artifact, runner):
    figure = benchmark.pedantic(
        fig7_crosspoints, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    wc_cross = figure.notes["wordcount_cross_point"]
    grep_cross = figure.notes["grep_cross_point"]
    text = render_series(figure.sizes, figure.series, title=figure.title)
    text += "\n\n" + render_chart(
        figure.sizes,
        figure.series,
        reference_y=1.0,
        x_formatter=format_size,
    )
    text += (
        f"\n\nwordcount cross point: {format_size(wc_cross)} (paper: 32GB)"
        f"\ngrep cross point:      {format_size(grep_cross)} (paper: 16GB)"
    )
    artifact("fig7_crosspoints", text, data=figure.to_dict())

    assert wc_cross is not None and grep_cross is not None
    # Fidelity bands from DESIGN.md: 32 +/- 8 GB and 16 +/- 6 GB.
    assert 24 * GB <= wc_cross <= 40 * GB, f"wordcount cross {wc_cross / GB:.1f}GB"
    assert 10 * GB <= grep_cross <= 22 * GB, f"grep cross {grep_cross / GB:.1f}GB"
    # The higher shuffle/input ratio must produce the higher cross point.
    assert wc_cross > grep_cross

    # Curve shape: above 1 at the smallest size, below 1 at the largest.
    for name, series in figure.series.items():
        assert series[0] > 1.0, f"{name} should start above 1"
        assert series[-1] < 1.0, f"{name} should end below 1"
