"""Fig. 5(a-d): Wordcount on the four architectures, 0.5-448 GB.

Paper shapes this bench must reproduce:

* small inputs (0.5-8 GB): up-HDFS > up-OFS > out-HDFS > out-OFS
  (better to worse), i.e. ascending execution time in that order;
* large inputs (>16-32 GB): out-OFS > out-HDFS > up-OFS > up-HDFS;
* up-HDFS infeasible beyond ~80 GB (91 GB local disks);
* shuffle phase always shorter on scale-up (RAMdisk + big heap).
"""

from repro.analysis.figures import fig5_wordcount
from repro.units import GB
from helpers import (
    assert_large_size_ordering,
    assert_small_size_ordering,
    render_panels,
    series_at,
)


def test_fig5_wordcount(benchmark, artifact, runner):
    panels = benchmark.pedantic(
        fig5_wordcount, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    artifact("fig5_wordcount", render_panels(panels), data={k: p.to_dict() for k, p in panels.items()})

    execution = panels["execution"]
    assert_small_size_ordering(execution, 2 * GB)
    assert_large_size_ordering(execution, 64 * GB)

    # up-HDFS cannot hold the 128/256/448 GB datasets (91 GB disks).
    up_hdfs = execution.series["up-HDFS"]
    assert up_hdfs[execution.sizes.index(128 * GB)] is None
    assert up_hdfs[execution.sizes.index(448 * GB)] is None
    # ... but everything else runs the whole ladder.
    for name in ("up-OFS", "out-OFS", "out-HDFS"):
        assert all(v is not None for v in execution.series[name])

    # Shuffle phase shorter on scale-up at every feasible size.
    shuffle = panels["shuffle"]
    for i, size in enumerate(shuffle.sizes):
        up = shuffle.series["up-OFS"][i]
        out = shuffle.series["out-OFS"][i]
        assert up < out, f"shuffle not faster on scale-up at {size}"
