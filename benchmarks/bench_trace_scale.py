"""Trace-scale replay bench: how fast can we retire a million jobs?

Replays FB-2009 synthesized traces (same 6000-jobs/day arrival rate as
the Section V replay, shrink factor 5) at growing scale through three
configurations of the simulator:

* ``heap``     — the reference kernel, full event-by-event simulation;
* ``calendar`` — the calendar-queue kernel, full simulation (pinned
  byte-identical to heap by ``tests/test_kernel_equivalence.py``; the
  bench re-checks completion times anyway);
* ``analytic`` — calendar kernel + the full-analytic fast path
  (``FastPathPolicy.full_analytic()``): one completion event per job,
  fluid FIFO queueing, tolerance-validated — NOT byte-identical.

For each scale the report archives wall-clock, events processed and
events/sec.  For the analytic mode it also archives
``equivalent_events_per_sec`` — the events the heap baseline needed for
the same trace, divided by the analytic wall time ("baseline event work
retired per second") — plus honest accuracy deltas against the baseline
(makespan + per-job execution-time error quantiles).  Nothing is
extrapolated: every number comes from an end-to-end replay at that
scale, and scales that were not run in this invocation are not carried
over into the report.

Usage::

    python benchmarks/bench_trace_scale.py --jobs 10000
    python benchmarks/bench_trace_scale.py --jobs 10000,100000,1000000
    python benchmarks/bench_trace_scale.py --jobs 10000 --budget 300

``--budget N`` asserts total wall-clock stays under N seconds (the CI
trace-scale-smoke job uses this).  The acceptance bar — the analytic
mode must retire baseline event work at >=10x the heap kernel's
events/sec — is asserted on every run that includes the heap baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core import Deployment, FastPathPolicy
from repro.core.architectures import hybrid
from repro.workload.fb2009 import DAY, generate_fb2009

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_trace.json"

#: Paper arrival rate: 6000 jobs per day, times the fig10 shrink factor.
SHRINK = 5.0
SEED = 2009

#: The acceptance bar (ISSUE 7): analytic mode must retire the heap
#: baseline's event work at >= this multiple of the heap rate.
MIN_EQUIVALENT_SPEEDUP = 10.0


def build_jobs(num_jobs: int):
    trace = generate_fb2009(
        num_jobs=num_jobs, duration=DAY * num_jobs / 6000.0, seed=SEED
    ).shrink(SHRINK)
    return trace.to_jobspecs()


def replay(jobs, kernel: str, fast: bool):
    policy = FastPathPolicy.full_analytic() if fast else None
    # ~200 events/job of headroom: a 1M-job full simulation is ~160M
    # events, past the engine's default runaway-chain valve.
    deployment = Deployment(
        hybrid(),
        kernel=kernel,
        fast_path=policy,
        max_events=max(50_000_000, 500 * len(jobs)),
    )
    t0 = time.perf_counter()
    results = deployment.run_trace(jobs, register_dataset=False)
    wall = time.perf_counter() - t0
    return wall, deployment.sim.events_processed, results


def makespan(results) -> float:
    return max(r.end_time for r in results) - min(
        r.submit_time for r in results
    )


def accuracy(baseline, approximate) -> dict:
    """Per-job execution-time error quantiles of an approximate replay
    against the event-accurate baseline (jobs matched by submit order)."""
    errs = sorted(
        abs(a.execution_time - b.execution_time) / b.execution_time
        for b, a in zip(
            sorted(baseline, key=lambda r: r.submit_time),
            sorted(approximate, key=lambda r: r.submit_time),
        )
        if b.execution_time > 0
    )
    count = len(errs)
    base_span = makespan(baseline)
    return {
        "makespan_rel_err": round(
            abs(makespan(approximate) - base_span) / base_span, 5
        ),
        "exec_time_rel_err": {
            "mean": round(sum(errs) / count, 4),
            "median": round(errs[count // 2], 4),
            "p90": round(errs[int(count * 0.9)], 4),
            "max": round(errs[-1], 4),
        },
    }


def run_scale(num_jobs: int, modes) -> dict:
    t0 = time.perf_counter()
    jobs = build_jobs(num_jobs)
    gen_seconds = time.perf_counter() - t0
    print(
        f"[{num_jobs:>9,} jobs] trace generated in {gen_seconds:.1f}s",
        flush=True,
    )

    entry: dict = {"generate_seconds": round(gen_seconds, 2), "modes": {}}
    baseline = None
    baseline_events = baseline_rate = None
    for mode in modes:
        kernel = "heap" if mode == "heap" else "calendar"
        wall, events, results = replay(jobs, kernel, fast=(mode == "analytic"))
        rate = events / wall
        stats = {
            "wall_seconds": round(wall, 2),
            "events_processed": events,
            "events_per_sec": round(rate),
            "makespan_seconds": round(makespan(results), 2),
        }
        line = f"[{num_jobs:>9,} jobs] {mode:<8} {wall:9.2f}s  {events:>12,} events  {rate:>12,.0f} ev/s"
        if mode == "heap":
            baseline, baseline_events, baseline_rate = results, events, rate
        elif mode == "calendar" and baseline is not None:
            identical = [r.end_time for r in results] == [
                r.end_time for r in baseline
            ]
            assert identical, "calendar kernel diverged from heap"
            stats["identical_to_heap"] = identical
        elif mode == "analytic" and baseline is not None:
            equivalent_rate = baseline_events / wall
            speedup = equivalent_rate / baseline_rate
            stats["equivalent_events_per_sec"] = round(equivalent_rate)
            stats["speedup_vs_heap"] = round(speedup, 1)
            stats["accuracy_vs_heap"] = accuracy(baseline, results)
            line += f"  ({speedup:.1f}x heap)"
            assert speedup >= MIN_EQUIVALENT_SPEEDUP, (
                f"analytic mode retired baseline event work at only "
                f"{speedup:.1f}x the heap rate (bar: {MIN_EQUIVALENT_SPEEDUP}x)"
            )
        entry["modes"][mode] = stats
        print(line, flush=True)
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        default="10000",
        help="comma-separated trace sizes to replay (default: 10000)",
    )
    parser.add_argument(
        "--modes",
        default="heap,calendar,analytic",
        help="comma-separated subset of heap,calendar,analytic",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="assert total wall-clock (seconds) stays under this",
    )
    parser.add_argument(
        "--report",
        default=str(REPORT),
        help=f"output path (default: {REPORT})",
    )
    args = parser.parse_args(argv)

    scales = [int(s) for s in args.jobs.split(",")]
    modes = [m.strip() for m in args.modes.split(",")]
    unknown = set(modes) - {"heap", "calendar", "analytic"}
    if unknown:
        parser.error(f"unknown modes: {sorted(unknown)}")

    t0 = time.perf_counter()
    report = {
        "trace": {
            "workload": "fb2009-synthesized",
            "arrival_rate_jobs_per_day": 6000,
            "shrink_factor": SHRINK,
            "seed": SEED,
            "architecture": "hybrid",
        },
        "scales": {
            str(n): run_scale(n, modes) for n in scales
        },
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
    }
    total = time.perf_counter() - t0
    report["total_wall_seconds"] = round(total, 2)

    Path(args.report).write_text(json.dumps(report, indent=1) + "\n")
    print(f"report -> {args.report}  (total {total:.1f}s)", flush=True)

    if args.budget is not None and total > args.budget:
        print(
            f"FAIL: wall-clock {total:.1f}s exceeded budget {args.budget:.0f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
