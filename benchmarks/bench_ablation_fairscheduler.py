"""Ablation: would better scheduling have saved traditional Hadoop?

The natural critique of the paper: its THadoop baseline runs stock FIFO
Hadoop 1.x, where small jobs queue behind large jobs' map waves and
behind slot-hoarding early reducers — maybe a fair scheduler, not a
hybrid architecture, is the fix.

This bench replays the FB-2009 sample on THadoop under three
configurations — stock FIFO, fair maps only, and "tuned" (fair maps +
polite reducers, i.e. slowstart 1.0) — plus the hybrid.  The findings
it asserts:

1. fair map scheduling *alone* does not help (the damage is reduce-slot
   hoarding, which map order cannot undo — the reason the real Fair
   Scheduler grew preemption);
2. the tuned configuration helps THadoop's small jobs substantially;
3. the hybrid still dominates the small-job *tail* (p99/max) even
   against tuned THadoop — the scale-up cluster's RAMdisk shuffle and
   faster cores are architectural, not schedulable.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.architectures import hybrid, thadoop
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.deployment import Deployment
from repro.core.scheduler import Decision, SizeAwareScheduler
from repro.workload.fb2009 import DAY, generate_fb2009

NUM_JOBS = 400

SCENARIOS = {
    "THadoop (FIFO, stock)": (thadoop, DEFAULT_CALIBRATION),
    "THadoop (fair maps)": (
        thadoop,
        DEFAULT_CALIBRATION.with_options(scheduler_policy="fair"),
    ),
    "THadoop (fair + slowstart 1.0)": (
        thadoop,
        DEFAULT_CALIBRATION.with_options(
            scheduler_policy="fair", reduce_slowstart=1.0
        ),
    ),
    "Hybrid (stock)": (hybrid, DEFAULT_CALIBRATION),
}


def run_fair_ablation():
    trace = generate_fb2009(
        num_jobs=NUM_JOBS, seed=2009, duration=DAY * NUM_JOBS / 6000
    ).shrink(5.0)
    jobs = trace.to_jobspecs()
    scheduler = SizeAwareScheduler()
    small_ids = {
        j.job_id for j in jobs if scheduler.decide_job(j) is Decision.SCALE_UP
    }
    stats = {}
    for name, (spec_fn, calibration) in SCENARIOS.items():
        results = Deployment(spec_fn(), calibration=calibration).run_trace(jobs)
        stats[name] = np.array(
            [r.execution_time for r in results if r.job_id in small_ids]
        )
    return stats


def test_ablation_fair_scheduler(benchmark, artifact):
    stats = benchmark.pedantic(run_fair_ablation, rounds=1, iterations=1)
    rows = [
        [name, float(np.mean(s)), float(np.percentile(s, 99)), float(s.max())]
        for name, s in stats.items()
    ]
    artifact(
        "ablation_fairscheduler",
        render_table(
            ["scenario", "small-job mean (s)", "p99 (s)", "max (s)"],
            rows,
            title=f"scheduling-vs-architecture ablation: {NUM_JOBS}-job FB-2009 sample",
        ),
    )
    fifo = stats["THadoop (FIFO, stock)"]
    fair = stats["THadoop (fair maps)"]
    tuned = stats["THadoop (fair + slowstart 1.0)"]
    hybrid_small = stats["Hybrid (stock)"]

    # (1) Fair maps alone do not rescue the small jobs (within 10%).
    assert np.mean(fair) > np.mean(fifo) * 0.9
    # (2) The tuned configuration genuinely helps THadoop.
    assert np.mean(tuned) < np.mean(fifo)
    assert np.percentile(tuned, 99) < np.percentile(fifo, 99)
    # (3) The hybrid still dominates the small-job tail even vs tuned.
    assert np.percentile(hybrid_small, 99) < np.percentile(tuned, 99)
    assert hybrid_small.max() < tuned.max()
