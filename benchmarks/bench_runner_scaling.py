"""Runner scaling: the Fig. 7 cross-point grid, serial vs parallel vs
cached.

Times the same cell grid three ways —

* serial  (``max_workers=1``, no cache),
* parallel (``max_workers=N``; N from ``REPRO_JOBS``, default 2),
* warm-cache re-run (every cell already cached),

asserts all three produce byte-identical payloads, times the warm
bulk-read path on both store backends (sharded JSON vs sqlite — the
``get_many`` contract behind one-read warm grids), and archives the
timings plus cache-hit statistics to ``BENCH_runner.json`` at the repo
root.  No minimum speedup is asserted: cells are milliseconds-long
analytic simulations, so the wall-clock ratio is reported, not
enforced.  What *is* enforced is the subsystem's contract: same bytes,
and zero simulations when warm.

On a box with fewer than two CPUs a "parallel speedup" would measure
process-switching contention, not scaling, so the report marks the
parallel timing as skipped (with the reason) and the test skips with
the same note — the contract assertions still run first.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.figures import FIG7_SIZES
from repro.apps import GREP, WORDCOUNT
from repro.core.architectures import out_ofs, up_ofs
from repro.runner import (
    PoolRunner,
    ResultCache,
    SqliteResultCache,
    canonical_json,
    migrate_json_tree,
    sweep_experiment,
)
from conftest import runner_workers

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_runner.json"


def fig7_cells():
    """The cross-point grid: both shuffle apps on up-OFS and out-OFS."""
    archs = [up_ofs(), out_ofs()]
    return (
        sweep_experiment(archs, WORDCOUNT, FIG7_SIZES).cells
        + sweep_experiment(archs, GREP, FIG7_SIZES).cells
    )


def timed(runner: PoolRunner, cells):
    t0 = time.perf_counter()
    outcomes = runner.run_cells(cells)
    return time.perf_counter() - t0, outcomes


def test_runner_scaling(benchmark, artifact, tmp_path):
    cells = fig7_cells()
    workers = max(2, runner_workers())

    serial_seconds, serial = benchmark.pedantic(
        lambda: timed(PoolRunner(max_workers=1), cells),
        rounds=1, iterations=1,
    )

    parallel_runner = PoolRunner(
        max_workers=workers, cache=ResultCache(tmp_path / "cache")
    )
    parallel_seconds, parallel = timed(parallel_runner, cells)
    parallel_stats = parallel_runner.last_stats

    warm_runner = PoolRunner(
        max_workers=workers, cache=ResultCache(tmp_path / "cache")
    )
    warm_seconds, warm = timed(warm_runner, cells)
    warm_stats = warm_runner.last_stats

    # The contract: identical bytes in all three modes, zero warm work.
    serial_bytes = [canonical_json(o.payload) for o in serial]
    assert serial_bytes == [canonical_json(o.payload) for o in parallel]
    assert serial_bytes == [canonical_json(o.payload) for o in warm]
    assert parallel_stats.simulated == len(cells)
    assert warm_stats.simulated == 0
    assert warm_stats.cache_hits == len(cells)

    # Store-backend face-off: migrate the warm JSON tree into sqlite and
    # time the warm bulk read (`get_many` over the whole grid) on both.
    sqlite_store = SqliteResultCache(tmp_path / "cache" / "results.sqlite")
    migrated = migrate_json_tree(ResultCache(tmp_path / "cache"), sqlite_store)
    assert migrated == len(set(c.content_key() for c in cells))
    keys = [cell.content_key() for cell in cells]
    store_bench = {}
    for store in (ResultCache(tmp_path / "cache"), sqlite_store):
        t0 = time.perf_counter()
        found = store.get_many(keys)
        store_bench[store.backend] = {
            "warm_bulk_read_seconds": round(time.perf_counter() - t0, 4),
            "hits": len(found),
        }
        assert len(found) == len(set(keys))
    # Identical bytes from both backends, key by key.
    json_payloads = ResultCache(tmp_path / "cache").get_many(keys)
    sqlite_payloads = sqlite_store.get_many(keys)
    for key in json_payloads:
        assert canonical_json(json_payloads[key]) == canonical_json(
            sqlite_payloads[key]
        )

    sqlite_runner = PoolRunner(max_workers=workers, cache=sqlite_store)
    sqlite_seconds, sqlite_warm = timed(sqlite_runner, cells)
    assert serial_bytes == [canonical_json(o.payload) for o in sqlite_warm]
    assert sqlite_runner.last_stats.simulated == 0
    assert sqlite_runner.last_stats.cache_hits == len(cells)

    cpus = os.cpu_count() or 1
    report = {
        "grid": "fig7-crosspoints",
        "cells": len(cells),
        "pool_workers": workers,
        "effective_parallelism": min(workers, cpus),
        "used_pool": parallel_stats.used_pool,
        "serial_seconds": round(serial_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(serial_seconds / warm_seconds, 3),
        "parallel_identical_to_serial": True,
        "cache": {
            "cold": parallel_runner.cache.stats.as_dict(),
            "warm": warm_runner.cache.stats.as_dict(),
        },
        "store_backends": {
            **store_bench,
            "sqlite_warm_grid_seconds": round(sqlite_seconds, 4),
            "migrated_entries": migrated,
            "payloads_identical": True,
        },
        "env": {
            "REPRO_JOBS": os.environ.get("REPRO_JOBS", ""),
            "cpu_count": cpus,
        },
    }
    single_core_note = (
        f"parallel speedup not published: cpu_count={cpus} < 2, so "
        f"{workers} workers would measure contention, not scaling"
    )
    if cpus >= 2:
        report["parallel_seconds"] = round(parallel_seconds, 4)
        report["speedup"] = round(serial_seconds / parallel_seconds, 3)
    else:
        report["parallel_timing"] = {"skipped": True, "note": single_core_note}
    REPORT.write_text(json.dumps(report, indent=1) + "\n")
    artifact("runner_scaling", json.dumps(report, indent=1))
    if cpus < 2:
        pytest.skip(single_core_note)
