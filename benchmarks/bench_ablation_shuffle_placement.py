"""Ablation: shuffle data placement on the scale-up cluster (Section II-D).

The paper mounts half of each scale-up node's 505 GB RAM as tmpfs and
points the shuffle there, "which improves the shuffle data I/O
performance greatly".  This bench runs the same shuffle-heavy job with
the RAMdisk on and off and measures exactly what the choice buys.
"""

from repro.analysis.report import render_table
from repro.apps import WORDCOUNT
from repro.core.architectures import up_ofs
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.deployment import Deployment
from repro.units import GB


def run_placement_ablation():
    job = WORDCOUNT.make_job(32 * GB)
    rows = []
    for ramdisk in (True, False):
        cal = DEFAULT_CALIBRATION.with_options(up_shuffle_on_ramdisk=ramdisk)
        result = Deployment(up_ofs(), calibration=cal).run_job(job, register_dataset=True)
        label = "RAMdisk (tmpfs)" if ramdisk else "local HDD"
        rows.append([label, result.shuffle_phase, result.execution_time])
    return rows


def test_ablation_shuffle_placement(benchmark, artifact):
    rows = benchmark.pedantic(run_placement_ablation, rounds=1, iterations=1)
    artifact(
        "ablation_shuffle_placement",
        render_table(
            ["shuffle store", "shuffle phase (s)", "execution (s)"],
            rows,
            title="shuffle-placement ablation: wordcount 32GB on up-OFS",
        ),
    )
    ramdisk_row, hdd_row = rows
    # The RAMdisk must shorten the shuffle phase and the whole job —
    # this is a large part of why scale-up wins shuffle-heavy jobs.
    assert ramdisk_row[1] < hdd_row[1]
    assert ramdisk_row[2] < hdd_row[2]
