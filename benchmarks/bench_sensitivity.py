"""Robustness study: do the reproduced conclusions survive calibration
shocks?

Perturbs every fitted constant by +/-25% (one at a time) and re-checks
the headline shapes.  The claim this bench defends: the paper's
qualitative results are properties of the modelled system, not of one
lucky parameter vector.  (Cross-point *positions* move with the
constants — they are supposed to; the paper itself says they are
deployment-specific.  It is the orderings that must be robust.)
"""

from repro.analysis.report import render_table
from repro.analysis.sensitivity import SHOCKABLE, run_sensitivity, summarize
from repro.units import GB


def test_sensitivity_to_calibration(benchmark, artifact, runner):
    shocks = benchmark.pedantic(
        run_sensitivity, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    rows = [
        [
            s.parameter,
            f"x{s.factor:g}",
            f"{s.wordcount_cross / GB:.1f}GB" if s.wordcount_cross else "none",
            "yes" if s.small_ordering_holds else "NO",
            "yes" if s.large_ordering_holds else "NO",
            "yes" if s.crosses_ordered else "NO",
        ]
        for s in shocks
    ]
    summary = summarize(shocks)
    text = render_table(
        ["constant", "shock", "wc cross", "small order", "large order",
         "crosses ordered"],
        rows,
        title="calibration sensitivity (+/-25% single-parameter shocks)",
    )
    text += "\n\nsurvival rates: " + ", ".join(
        f"{k}={v:.0%}" for k, v in summary.items()
    )
    artifact("sensitivity", text)

    # The orderings are the claims; they must survive the large majority
    # of shocks.  (A few extreme shocks legitimately flip razor-thin
    # comparisons — that fragility is itself reported in the artifact.)
    assert summary["small_ordering"] >= 0.8
    assert summary["large_ordering"] >= 0.8
    assert summary["crosses_ordered"] >= 0.8
    assert summary["wordcount_cross_exists"] >= 0.9
    assert len(shocks) == 2 * len(SHOCKABLE)
