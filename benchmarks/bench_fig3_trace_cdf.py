"""Fig. 3: CDF of input data size in the FB-2009 synthesized trace.

Paper: input sizes span KB to TB; 40% of jobs below 1 MB, 49% between
1 MB and 30 GB, 11% above 30 GB; and (Section V) more than 80% of jobs
below 10 GB.
"""

import numpy as np

from repro.analysis.asciichart import render_chart
from repro.analysis.figures import fig3_trace_cdf
from repro.analysis.report import render_series
from repro.units import GB, format_size


def test_fig3_trace_cdf(benchmark, artifact):
    figure = benchmark.pedantic(
        fig3_trace_cdf, kwargs={"num_jobs": 6000, "seed": 2009},
        rounds=1, iterations=1,
    )
    text = render_series(figure.sizes, figure.series, title=figure.title)
    text += "\n\n" + render_chart(
        figure.sizes, figure.series, x_formatter=format_size, height=12
    )
    notes = figure.notes
    summary = (
        f"<1MB: {notes['share_below_1MB']:.1%}   "
        f"1MB-30GB: {notes['share_1MB_to_30GB']:.1%}   "
        f">30GB: {notes['share_above_30GB']:.1%}   "
        f"(paper: 40% / 49% / 11%)"
    )
    artifact("fig3_trace_cdf", text + "\n" + summary, data=figure.to_dict())

    assert notes["share_below_1MB"] == abs(notes["share_below_1MB"])
    assert abs(notes["share_below_1MB"] - 0.40) < 0.03
    assert abs(notes["share_1MB_to_30GB"] - 0.49) < 0.03
    assert abs(notes["share_above_30GB"] - 0.11) < 0.02

    cdf = np.array(figure.series["CDF"])
    assert np.all(np.diff(cdf) >= 0), "a CDF must be monotone"
    # Section V: >80% of jobs below 10 GB.
    sizes = np.array(figure.sizes)
    below_10gb = cdf[np.searchsorted(sizes, 10 * GB) - 1]
    assert below_10gb > 0.80
