"""Ablation: HDFS replication factor (Section II-D).

The paper lowers replication from Hadoop's default 3 to 2 because its
single-rack cluster gains no fault-domain spread from the third copy,
while every extra replica costs write bandwidth.  This bench measures a
write-heavy job under replication 1/2/3 on out-HDFS.
"""

from repro.analysis.report import render_table
from repro.apps import TESTDFSIO_WRITE
from repro.core.architectures import out_hdfs
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.deployment import Deployment
from repro.units import GB


def run_replication_sweep():
    job = TESTDFSIO_WRITE.make_job(50 * GB)
    rows = []
    for replication in (1, 2, 3):
        cal = DEFAULT_CALIBRATION.with_options(replication=replication)
        result = Deployment(out_hdfs(), calibration=cal).run_job(job, register_dataset=True)
        rows.append([replication, result.execution_time, result.map_phase])
    return rows


def test_ablation_replication(benchmark, artifact):
    rows = benchmark.pedantic(run_replication_sweep, rounds=1, iterations=1)
    artifact(
        "ablation_replication",
        render_table(
            ["replication", "execution (s)", "map phase (s)"],
            rows,
            title="replication ablation: dfsio-write 50GB on out-HDFS",
        ),
    )
    times = [row[1] for row in rows]
    # Each extra replica costs write bandwidth: strictly increasing.
    assert times[0] < times[1] < times[2]
