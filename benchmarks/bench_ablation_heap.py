"""Ablation: task heap size (Section II-D).

The paper tunes heaps to 8 GB on scale-up and 1.5 GB on scale-out by
trial and error, because the heap bounds the reduce-side shuffle buffer:
too small and shuffled data spills to disk.  This bench sweeps the
scale-out heap for a shuffle-heavy job and shows the shuffle phase
shrinking as the buffer grows, then saturating once spills stop.
"""

from repro.analysis.report import render_table
from repro.apps import WORDCOUNT
from repro.core.architectures import out_ofs
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.deployment import Deployment
from repro.units import GB

HEAPS_GB = (0.5, 1.0, 1.5, 3.0, 8.0)


def run_heap_sweep():
    job = WORDCOUNT.make_job(32 * GB)
    rows = []
    for heap_gb in HEAPS_GB:
        cal = DEFAULT_CALIBRATION.with_options(heap_out=heap_gb * GB)
        result = Deployment(out_ofs(), calibration=cal).run_job(job, register_dataset=True)
        rows.append([f"{heap_gb:g}GB", result.shuffle_phase, result.execution_time])
    return rows


def test_ablation_heap_size(benchmark, artifact):
    rows = benchmark.pedantic(run_heap_sweep, rounds=1, iterations=1)
    artifact(
        "ablation_heap",
        render_table(
            ["scale-out heap", "shuffle phase (s)", "execution (s)"],
            rows,
            title="heap-size ablation: wordcount 32GB on out-OFS",
        ),
    )
    shuffles = [row[1] for row in rows]
    # Bigger heaps never make the shuffle slower...
    assert all(b <= a * 1.001 for a, b in zip(shuffles, shuffles[1:]))
    # ...and the spill-to-no-spill transition is visible end to end.
    assert shuffles[-1] < shuffles[0]
