"""Fig. 6(a-d): Grep on the four architectures, 0.5-448 GB.

Same panel structure and orderings as Fig. 5, but Grep's lower
shuffle/input ratio (0.4 vs 1.6) moves its cross point down to ~16 GB —
so at 32 GB Grep already favours scale-out while Wordcount does not.
"""

from repro.analysis.figures import fig5_wordcount, fig6_grep
from repro.units import GB
from helpers import (
    assert_large_size_ordering,
    assert_small_size_ordering,
    render_panels,
    series_at,
)


def test_fig6_grep(benchmark, artifact, runner):
    panels = benchmark.pedantic(
        fig6_grep, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    artifact("fig6_grep", render_panels(panels), data={k: p.to_dict() for k, p in panels.items()})

    execution = panels["execution"]
    assert_small_size_ordering(execution, 2 * GB)
    assert_large_size_ordering(execution, 64 * GB)

    # Grep's cross point is below Wordcount's: at 32 GB scale-out is
    # already ahead for Grep.
    at_32 = series_at(execution, 32 * GB)
    assert at_32["out-OFS"] < at_32["up-OFS"]

    # Shuffle phase shorter on scale-up throughout.
    shuffle = panels["shuffle"]
    for i in range(len(shuffle.sizes)):
        assert shuffle.series["up-OFS"][i] < shuffle.series["out-OFS"][i]


def test_fig6_grep_vs_wordcount_shuffle(benchmark, artifact):
    """Wordcount (ratio 1.6) must carry more shuffle than Grep (0.4) at
    the same input size — the paper's explanation of the cross points."""

    def both():
        return fig6_grep(), fig5_wordcount()

    grep_panels, wc_panels = benchmark.pedantic(both, rounds=1, iterations=1)
    size_index = grep_panels["shuffle"].sizes.index(32 * GB)
    for arch in ("up-OFS", "out-OFS"):
        grep_shuffle = grep_panels["shuffle"].series[arch][size_index]
        wc_shuffle = wc_panels["shuffle"].series[arch][size_index]
        assert wc_shuffle > grep_shuffle
    artifact(
        "fig6_shuffle_comparison",
        f"shuffle duration at 32GB (s): wordcount vs grep\n"
        f"  up-OFS : {wc_panels['shuffle'].series['up-OFS'][size_index]:.1f} vs "
        f"{grep_panels['shuffle'].series['up-OFS'][size_index]:.1f}\n"
        f"  out-OFS: {wc_panels['shuffle'].series['out-OFS'][size_index]:.1f} vs "
        f"{grep_panels['shuffle'].series['out-OFS'][size_index]:.1f}",
    )
