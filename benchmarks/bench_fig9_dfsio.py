"""Fig. 9(a-d): TestDFSIO write test on the four architectures, 1-1000 GB.

Paper shapes:

* small (1-5 GB): scale-up best (CPU + low overheads), with a smaller
  margin than the shuffle-intensive apps;
* large (>= 10 GB): out-OFS > up-OFS > out-HDFS (OFS's dedicated array
  beats replicated local-disk writes by a wide margin);
* shuffle and reduce phase durations are tiny (< ~8 s) at every size;
* up-HDFS cannot run beyond its 91 GB local disks.
"""

from repro.analysis.figures import fig9_dfsio
from repro.units import GB
from helpers import render_panels, series_at


def test_fig9_dfsio(benchmark, artifact, runner):
    panels = benchmark.pedantic(
        fig9_dfsio, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    artifact("fig9_dfsio", render_panels(panels), data={k: p.to_dict() for k, p in panels.items()})

    execution = panels["execution"]

    # Small sizes: scale-up beats scale-out; HDFS beats OFS on each side.
    at_3 = series_at(execution, 3 * GB)
    assert at_3["up-HDFS"] < at_3["up-OFS"]
    assert at_3["up-OFS"] < at_3["out-OFS"]
    assert at_3["out-HDFS"] < at_3["out-OFS"]

    # Large sizes: out-OFS > up-OFS > out-HDFS (paper's stated order).
    at_100 = series_at(execution, 100 * GB)
    assert at_100["out-OFS"] < at_100["up-OFS"]
    assert at_100["out-OFS"] < at_100["out-HDFS"]

    # up-HDFS infeasible at 100 GB and beyond.
    assert at_100["up-HDFS"] is None
    at_1000 = series_at(execution, 1000 * GB)
    assert at_1000["up-HDFS"] is None
    assert at_1000["out-OFS"] is not None

    # Shuffle and reduce phases are negligible for a map-intensive app.
    for phase in ("shuffle", "reduce"):
        for name, series in panels[phase].series.items():
            for value in series:
                if value is not None:
                    assert value < 8.0, f"{phase} on {name}: {value}"
