"""Fig. 8: cross point of the TestDFSIO write test (~10 GB).

Map-intensive jobs have a near-zero shuffle/input ratio, so they gain
almost nothing from the scale-up cluster's shuffle machinery; their
cross point is the lowest of the measured applications.
"""

from repro.analysis.asciichart import render_chart
from repro.analysis.figures import fig7_crosspoints, fig8_crosspoint_dfsio
from repro.analysis.report import render_series
from repro.units import GB, format_size


def test_fig8_crosspoint_dfsio(benchmark, artifact, runner):
    figure = benchmark.pedantic(
        fig8_crosspoint_dfsio, kwargs={"runner": runner}, rounds=1,
        iterations=1,
    )
    cross = figure.notes["dfsio_cross_point"]
    text = render_series(figure.sizes, figure.series, title=figure.title)
    text += "\n\n" + render_chart(
        figure.sizes,
        figure.series,
        reference_y=1.0,
        x_formatter=format_size,
    )
    text += f"\n\ndfsio-write cross point: {format_size(cross)} (paper: 10GB)"
    artifact("fig8_crosspoint_dfsio", text, data=figure.to_dict())

    assert cross is not None
    # Fidelity band from DESIGN.md: 10 +/- 4 GB.
    assert 6 * GB <= cross <= 14 * GB, f"dfsio cross {cross / GB:.1f}GB"

    series = figure.series["out-OFS-Write"]
    assert series[0] > 1.0
    assert series[-1] < 1.0


def test_fig8_map_intensive_cross_below_shuffle_intensive(
    benchmark, artifact, runner
):
    """The paper's conclusion: 'the cross point for map-intensive
    applications is smaller than shuffle-intensive applications.'"""

    def both():
        return (fig8_crosspoint_dfsio(runner=runner),
                fig7_crosspoints(runner=runner))

    fig8, fig7 = benchmark.pedantic(both, rounds=1, iterations=1)
    dfsio = fig8.notes["dfsio_cross_point"]
    grep = fig7.notes["grep_cross_point"]
    wordcount = fig7.notes["wordcount_cross_point"]
    artifact(
        "fig8_cross_ordering",
        "cross points ascend with shuffle/input ratio:\n"
        f"  dfsio (ratio ~0):   {format_size(dfsio)}\n"
        f"  grep (ratio 0.4):   {format_size(grep)}\n"
        f"  wordcount (1.6):    {format_size(wordcount)}",
    )
    assert dfsio < grep < wordcount
