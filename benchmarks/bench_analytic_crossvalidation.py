"""Cross-validation: closed-form model vs the discrete-event simulator.

Two independent implementations of docs/MODEL.md — wave algebra and the
event loop — predict the same isolated-job execution times to within a
modest tolerance across applications, sizes and architectures.  Where
they disagree, one of them is wrong; this bench is the tripwire.
"""

from repro.analysis.analytic import estimate
from repro.analysis.report import render_table
from repro.analysis.sweep import run_isolated
from repro.apps import GREP, TESTDFSIO_WRITE, WORDCOUNT
from repro.core.architectures import out_hdfs, out_ofs, up_ofs
from repro.units import GB, format_size

CASES = [
    (WORDCOUNT, up_ofs(), 2 * GB),
    (WORDCOUNT, up_ofs(), 32 * GB),
    (WORDCOUNT, out_ofs(), 64 * GB),
    (GREP, out_ofs(), 8 * GB),
    (GREP, up_ofs(), 16 * GB),
    (TESTDFSIO_WRITE, out_ofs(), 30 * GB),
    (GREP, out_hdfs(), 8 * GB),
]


def run_crossvalidation():
    rows = []
    ratios = []
    for app, spec, size in CASES:
        simulated = run_isolated(spec, app, size).execution_time
        predicted = estimate(spec, app.make_job(size)).execution_time
        ratio = predicted / simulated
        ratios.append(ratio)
        rows.append(
            [
                f"{app.name}@{format_size(size)}",
                spec.name,
                simulated,
                predicted,
                f"{ratio:.2f}x",
            ]
        )
    return rows, ratios


def test_analytic_crossvalidation(benchmark, artifact):
    rows, ratios = benchmark.pedantic(run_crossvalidation, rounds=1, iterations=1)
    artifact(
        "analytic_crossvalidation",
        render_table(
            ["case", "architecture", "simulated (s)", "analytic (s)",
             "analytic/simulated"],
            rows,
            title="closed-form model vs discrete-event simulator",
        ),
    )
    # The algebra ignores jitter, pipelining and partial-load dynamics;
    # agreement within ~35% across the grid is the structural check.
    for (app, spec, size), ratio in zip(CASES, ratios):
        assert 0.65 <= ratio <= 1.45, (app.name, spec.name, size, ratio)
