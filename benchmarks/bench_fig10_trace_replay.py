"""Fig. 10: the Section V trace-driven evaluation.

Replays the FB-2009 synthesized workload (5x size shrink, original
arrival rate) on the three equal-cost deployments and compares
execution-time distributions for the two job classes Algorithm 1
defines.

Paper shapes this bench must reproduce:

* Fig. 10(a) — scale-up jobs: Hybrid best by a wide margin; THadoop
  worst (paper maxima 48.53 s / 83.37 s / 68.17 s for
  Hybrid/THadoop/RHadoop).
* Fig. 10(b) — scale-out jobs: RHadoop beats THadoop (OFS's I/O).  The
  paper additionally reports the Hybrid beating both baselines here; in
  our equal-cost model the baselines' 24 scale-out nodes retain an edge
  over the hybrid's 12 for the very largest jobs — a documented
  deviation analysed in EXPERIMENTS.md.  We bound it: the hybrid's
  class maximum stays within 1.6x of the best baseline's, and the
  hybrid still wins the *whole-workload* mean.

Defaults to a 600-job rate-preserving sample; set REPRO_FULL=1 for the
paper's full 6000 jobs.
"""

import numpy as np

from repro.analysis.figures import fig10_trace_replay
from repro.analysis.report import render_table
from repro.workload.cdf import quantile
from conftest import replay_jobs


def run_replay(runner=None):
    return fig10_trace_replay(num_jobs=replay_jobs(), runner=runner)


def test_fig10_trace_replay(benchmark, artifact, runner):
    outcome = benchmark.pedantic(
        run_replay, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    blocks = []
    stats = {}
    for title, attr in (
        ("Fig 10(a): scale-up jobs", "scale_up_times"),
        ("Fig 10(b): scale-out jobs", "scale_out_times"),
    ):
        rows = []
        for name, replay in outcome.items():
            times = getattr(replay, attr)
            p50, p90, p99 = quantile(times, [0.5, 0.9, 0.99])
            maximum = float(np.max(times))
            stats[(attr, name)] = maximum
            rows.append([name, len(times), p50, p90, p99, maximum])
        blocks.append(
            render_table(
                ["architecture", "jobs", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)"],
                rows,
                title=title,
            )
        )
    blocks.append(
        "paper maxima: 10(a) 48.53/83.37/68.17s, "
        "10(b) 1207/3087/2734s (Hybrid/THadoop/RHadoop)"
    )
    artifact("fig10_trace_replay", "\n\n".join(blocks))

    # Fig 10(a): Hybrid < RHadoop < THadoop on the class maximum.
    up_hybrid = stats[("scale_up_times", "Hybrid")]
    up_thadoop = stats[("scale_up_times", "THadoop")]
    up_rhadoop = stats[("scale_up_times", "RHadoop")]
    assert up_hybrid < up_rhadoop < up_thadoop

    # Fig 10(b): RHadoop beats THadoop (reproduced); the Hybrid stays
    # within 2x of the best baseline (bounded, documented deviation).
    out_hybrid = stats[("scale_out_times", "Hybrid")]
    out_thadoop = stats[("scale_out_times", "THadoop")]
    out_rhadoop = stats[("scale_out_times", "RHadoop")]
    assert out_rhadoop < out_thadoop
    assert out_hybrid < 2.0 * min(out_rhadoop, out_thadoop)

    # Every job completed on every architecture.
    expected = replay_jobs()
    for replay in outcome.values():
        assert len(replay.results) == expected


def test_fig10_hybrid_speedup_summary(benchmark, artifact, runner):
    """The paper's headline: the hybrid improves the whole workload, not
    just the small jobs — its mean execution time beats both baselines."""
    outcome = benchmark.pedantic(
        run_replay, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    means = {
        name: float(np.mean([r.execution_time for r in replay.results]))
        for name, replay in outcome.items()
    }
    artifact(
        "fig10_mean_execution",
        render_table(
            ["architecture", "mean execution time (s)"],
            [[k, v] for k, v in means.items()],
            title="workload mean execution time",
        ),
    )
    assert means["Hybrid"] < means["THadoop"]
    assert means["Hybrid"] < means["RHadoop"]
