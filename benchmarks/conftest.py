"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, printing
the series and archiving it under ``benchmarks/out/`` so the run leaves
inspectable artifacts.  Set ``REPRO_FULL=1`` to run the Section V replay
at the paper's full 6000 jobs (default: 600, same arrival rate).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def replay_jobs() -> int:
    return 6000 if full_scale() else 600


@pytest.fixture
def artifact():
    """Writer that archives a figure's rendered text (and optional JSON
    data for external plotting) and prints the text."""

    def write(name: str, text: str, data=None) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            import json

            (OUT_DIR / f"{name}.json").write_text(json.dumps(data, indent=1))
        print()
        print(text)

    return write
