"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, printing
the series and archiving it under ``benchmarks/out/`` so the run leaves
inspectable artifacts.  Environment knobs:

* ``REPRO_FULL=1``  — run the Section V replay at the paper's full 6000
  jobs (default: 600, same arrival rate);
* ``REPRO_JOBS=N``  — fan simulation cells out across N worker
  processes (default 1 = serial; results are byte-identical either way);
* ``REPRO_CACHE=1`` — reuse cached cell results across benchmark runs
  (off by default so a benchmark always measures real simulations).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.runner import PoolRunner, ResultCache

OUT_DIR = Path(__file__).parent / "out"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def replay_jobs() -> int:
    return 6000 if full_scale() else 600


def runner_workers() -> int:
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def make_runner() -> PoolRunner:
    """The PoolRunner the environment asked for (see module docstring)."""
    cache = None
    if os.environ.get("REPRO_CACHE", "") == "1":
        cache = ResultCache()
    return PoolRunner(max_workers=runner_workers(), cache=cache)


@pytest.fixture
def runner():
    """Per-test experiment runner; prints its stats after the test."""
    active = make_runner()
    yield active
    if active.lifetime_stats.cells:
        print(f"\n[runner] {active.lifetime_stats.describe()}")


@pytest.fixture
def artifact():
    """Writer that archives a figure's rendered text (and optional JSON
    data for external plotting) and prints the text."""

    def write(name: str, text: str, data=None) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            import json

            (OUT_DIR / f"{name}.json").write_text(json.dumps(data, indent=1))
        print()
        print(text)

    return write
