"""Ablation: is the perfect-data-locality assumption safe?

The default HDFS model assumes every map reads its block from its own
node (the paper's clusters achieve this through Hadoop's locality
scheduling).  This bench turns on the explicit block-placement model —
real replica locations, locality-preferring dispatch, rack-remote reads
for misses — and measures (a) the achieved locality rate and (b) how far
execution times drift from the perfect-locality abstraction.
"""

from repro.analysis.report import render_table
from repro.apps import GREP, WORDCOUNT
from repro.core.architectures import out_hdfs, up_hdfs
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.deployment import Deployment
from repro.units import GB


def run_locality_ablation():
    rows = []
    drifts = []
    localities = []
    for app, size, arch_fn in (
        (GREP, 8 * GB, out_hdfs),
        (WORDCOUNT, 16 * GB, out_hdfs),
        (GREP, 8 * GB, up_hdfs),
    ):
        job = app.make_job(size)
        perfect = (
            Deployment(arch_fn(), calibration=DEFAULT_CALIBRATION)
            .run_job(job, register_dataset=True)
            .execution_time
        )
        cal = DEFAULT_CALIBRATION.with_options(hdfs_block_placement=True)
        deployment = Deployment(arch_fn(), calibration=cal)
        explicit = deployment.run_job(job, register_dataset=True).execution_time
        tracker = deployment.trackers[0]
        total = tracker.local_map_reads + tracker.remote_map_reads
        locality = tracker.local_map_reads / total
        drift = explicit / perfect - 1.0
        localities.append(locality)
        drifts.append(abs(drift))
        rows.append(
            [
                f"{app.name}@{size / GB:.0f}GB/{arch_fn().name}",
                perfect,
                explicit,
                f"{drift:+.1%}",
                f"{locality:.0%}",
            ]
        )
    return rows, drifts, localities


def test_ablation_locality(benchmark, artifact):
    rows, drifts, localities = benchmark.pedantic(
        run_locality_ablation, rounds=1, iterations=1
    )
    artifact(
        "ablation_locality",
        render_table(
            ["scenario", "perfect (s)", "explicit placement (s)", "drift",
             "locality"],
            rows,
            title="locality ablation: perfect vs explicit block placement",
        ),
    )
    # Locality-preferring dispatch finds a replica holder for most maps
    # (the 2-node scale-up cluster trivially always does; saturated
    # scale-out waves drop to ~60%, as real Hadoop does without delay
    # scheduling)...
    assert all(l > 0.5 for l in localities)
    # ...and even the misses barely move execution time, which is the
    # empirical license for the default perfect-locality abstraction.
    assert all(d < 0.15 for d in drifts)
