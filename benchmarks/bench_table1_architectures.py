"""Table I: the four measurement architectures.

Regenerates the architecture matrix (scale-up/out x OFS/HDFS) together
with a representative measurement cell for each — one mid-size Wordcount
job — to show all four are live, correctly configured deployments.
"""

from repro.analysis.report import render_table
from repro.analysis.sweep import run_isolated
from repro.apps import WORDCOUNT
from repro.core.architectures import table1_architectures
from repro.units import GB


def build_table1():
    rows = []
    for name, spec in table1_architectures().items():
        member = spec.members[0]
        result = run_isolated(spec, WORDCOUNT, 8 * GB)
        rows.append(
            [
                name,
                member.role,
                member.cluster.count,
                spec.storage.upper(),
                member.cluster.total_map_slots,
                member.cluster.total_reduce_slots,
                result.execution_time,
            ]
        )
    return rows


def test_table1_architectures(benchmark, artifact):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    text = render_table(
        [
            "architecture",
            "role",
            "machines",
            "storage",
            "map slots",
            "reduce slots",
            "wordcount 8GB (s)",
        ],
        rows,
        title="Table I: measurement architectures",
    )
    artifact("table1_architectures", text)

    names = {row[0] for row in rows}
    assert names == {"up-OFS", "up-HDFS", "out-OFS", "out-HDFS"}
    # Equal-cost sizing: 2 scale-up vs 12 scale-out.
    by_name = {row[0]: row for row in rows}
    assert by_name["up-OFS"][2] == 2
    assert by_name["out-OFS"][2] == 12
    # Every architecture actually ran the job.
    assert all(row[6] > 0 for row in rows)
