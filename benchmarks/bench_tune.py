"""Online-tuning bench: the head-to-head behind docs/TUNE.md.

Runs :func:`repro.tune.evaluate.evaluate_policies` at full scale — the
default shifting mix (shuffle-heavy then input-heavy, 20 jobs each)
replayed on a drifted Hybrid deployment under every routing policy —
and archives the regret/accuracy numbers EXPERIMENTS.md quotes:

* cumulative regret vs the oracle for static Algorithm 1, the
  recalibrated adaptive router, and the contextual bandit;
* the calibrator's MAPE trajectory (training + holdout, before/after
  each publish) and the parameter vector it converged to;
* wall-clock and runner cell statistics (the search is content-
  addressed, so a warm-cache re-run is dramatically cheaper).

Acceptance bars, asserted on every run:

* the recalibrated policy's cumulative regret is strictly lower than
  static Algorithm 1's (the ISSUE's head-to-head criterion);
* the final published calibration's holdout MAPE improves on the
  uncalibrated base.

Usage::

    python benchmarks/bench_tune.py
    python benchmarks/bench_tune.py --jobs-per-phase 10 --budget 120
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.runner.pool import PoolRunner
from repro.tune.evaluate import DEFAULT_PHASES, MixPhase, evaluate_policies

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_TUNE.json"

SEED = 0


def scaled_phases(jobs_per_phase: int | None):
    if jobs_per_phase is None:
        return DEFAULT_PHASES
    return tuple(
        MixPhase(p.name, p.apps, jobs_per_phase, p.min_gb, p.max_gb,
                 p.interarrival)
        for p in DEFAULT_PHASES
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs-per-phase", type=int, default=None,
        help="override jobs per workload phase (default: the paper-scale 20)",
    )
    parser.add_argument(
        "--workers", type=int, default=max(2, (os.cpu_count() or 2) // 2),
        help="runner processes for the calibration/oracle fan-outs",
    )
    parser.add_argument(
        "--publish-period", type=float, default=1800.0,
        help="seconds of simulated time between calibration publishes",
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="assert total wall-clock (seconds) stays under this",
    )
    parser.add_argument(
        "--report", default=str(REPORT),
        help=f"output path (default: {REPORT})",
    )
    args = parser.parse_args(argv)

    runner = PoolRunner(max_workers=args.workers)
    t0 = time.perf_counter()
    evaluation = evaluate_policies(
        phases=scaled_phases(args.jobs_per_phase),
        runner=runner,
        seed=SEED,
        publish_period=args.publish_period,
    )
    wall = time.perf_counter() - t0

    static = evaluation.outcome("static")
    recal = evaluation.outcome("recalibrated")
    bandit = evaluation.outcome("bandit")
    for outcome in (static, recal, bandit):
        print(
            f"{outcome.policy:<13} total {outcome.total_runtime:9.1f}s  "
            f"cumulative regret {outcome.cumulative_regret:8.1f}s",
            flush=True,
        )
    print(f"{'oracle':<13} total {evaluation.oracle_total_runtime:9.1f}s")

    assert recal.cumulative_regret < static.cumulative_regret, (
        f"recalibrated routing must beat static Algorithm 1: "
        f"{recal.cumulative_regret:.1f}s vs {static.cumulative_regret:.1f}s"
    )
    last = recal.updates[-1]
    assert last["holdout_mape_after"] < last["holdout_mape_before"], (
        f"calibration must improve holdout MAPE: "
        f"{last['holdout_mape_after']:.3f} vs {last['holdout_mape_before']:.3f}"
    )
    print(
        f"holdout MAPE {last['holdout_mape_before']:.3f} -> "
        f"{last['holdout_mape_after']:.3f} over {len(recal.updates)} "
        f"publish(es); chosen {last['chosen']}",
        flush=True,
    )

    report = {
        "bench": {
            "seed": SEED,
            "workers": args.workers,
            "publish_period": args.publish_period,
            "wall_seconds": round(wall, 2),
            "runner": runner.lifetime_stats.as_dict(),
        },
        "evaluation": evaluation.to_dict(),
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
    }
    Path(args.report).write_text(json.dumps(report, indent=1) + "\n")
    print(f"report -> {args.report}  (total {wall:.1f}s)", flush=True)

    if args.budget is not None and wall > args.budget:
        print(
            f"FAIL: wall-clock {wall:.1f}s exceeded budget {args.budget:.0f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
