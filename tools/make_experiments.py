#!/usr/bin/env python
"""Regenerate the measured-results section of EXPERIMENTS.md.

Runs every experiment at paper scale with DEFAULT_CALIBRATION and emits
markdown to stdout: per-figure paper-vs-measured tables.  The narrative
half of EXPERIMENTS.md is hand-written; this script produces everything
between the BEGIN/END GENERATED markers.

Usage:  python tools/make_experiments.py [--replay-jobs N] > /tmp/gen.md
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.figures import (
    fig3_trace_cdf,
    fig5_wordcount,
    fig6_grep,
    fig7_crosspoints,
    fig8_crosspoint_dfsio,
    fig9_dfsio,
    fig10_trace_replay,
)
from repro.units import GB, format_size
from repro.workload.cdf import quantile


def md_table(headers, rows):
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def fmt(value, digits=1):
    if value is None:
        return "—"
    return f"{value:.{digits}f}"


def section_fig3():
    figure = fig3_trace_cdf(num_jobs=6000, seed=2009)
    n = figure.notes
    print("### Fig. 3 — input-size CDF of the FB-2009 trace\n")
    print(md_table(
        ["statistic", "paper", "measured"],
        [
            ["jobs < 1 MB", "40%", f"{n['share_below_1MB']:.1%}"],
            ["jobs 1 MB – 30 GB", "49%", f"{n['share_1MB_to_30GB']:.1%}"],
            ["jobs > 30 GB", "11%", f"{n['share_above_30GB']:.1%}"],
            ["jobs < 10 GB (Section V)", "> 80%", "see bench fig3"],
        ],
    ))
    print()


def section_measurement(name, fig_fn, small_size, large_size, unit_note):
    panels = fig_fn()
    execution = panels["execution"]

    def row_at(size):
        index = execution.sizes.index(size)
        return {
            arch: execution.series[arch][index] for arch in execution.series
        }

    small = row_at(small_size)
    large = row_at(large_size)
    print(f"### {name}\n")
    print(unit_note + "\n")
    print(md_table(
        ["architecture",
         f"exec @ {format_size(small_size)} (normalized)",
         f"exec @ {format_size(large_size)} (normalized)"],
        [[arch, fmt(small[arch], 3), fmt(large[arch], 3)]
         for arch in ("up-HDFS", "up-OFS", "out-HDFS", "out-OFS")],
    ))
    shuffle = panels["shuffle"]
    index = shuffle.sizes.index(large_size)
    print(
        f"\nShuffle tail at {format_size(large_size)}: "
        f"up-OFS {fmt(shuffle.series['up-OFS'][index])}s vs "
        f"out-OFS {fmt(shuffle.series['out-OFS'][index])}s "
        "(paper: always shorter on scale-up).\n"
    )


def section_crosspoints():
    fig7 = fig7_crosspoints()
    fig8 = fig8_crosspoint_dfsio()
    print("### Figs. 7/8 — cross points\n")
    print(md_table(
        ["application", "shuffle/input", "paper cross", "measured cross"],
        [
            ["TestDFSIO-write", "~0", "10GB",
             format_size(fig8.notes["dfsio_cross_point"])],
            ["Grep", "0.4", "16GB",
             format_size(fig7.notes["grep_cross_point"])],
            ["Wordcount", "1.6", "32GB",
             format_size(fig7.notes["wordcount_cross_point"])],
        ],
    ))
    print()


def section_fig10(num_jobs):
    outcome = fig10_trace_replay(num_jobs=num_jobs)
    print(f"### Fig. 10 — FB-2009 replay ({num_jobs} jobs, 5x shrink)\n")
    for label, attr, paper in (
        ("Fig. 10(a) scale-up jobs", "scale_up_times",
         {"Hybrid": "48.53", "THadoop": "83.37", "RHadoop": "68.17"}),
        ("Fig. 10(b) scale-out jobs", "scale_out_times",
         {"Hybrid": "1207", "THadoop": "3087", "RHadoop": "2734"}),
    ):
        rows = []
        for arch in ("Hybrid", "THadoop", "RHadoop"):
            times = getattr(outcome[arch], attr)
            p50, p99 = quantile(times, [0.5, 0.99])
            rows.append(
                [arch, paper[arch], fmt(float(np.max(times))),
                 fmt(float(p50)), fmt(float(p99))]
            )
        print(f"**{label}** (seconds)\n")
        print(md_table(
            ["architecture", "paper max", "measured max", "measured p50",
             "measured p99"],
            rows,
        ))
        print()
    means = {
        arch: float(np.mean([r.execution_time for r in outcome[arch].results]))
        for arch in outcome
    }
    print("**Whole-workload mean execution time** (not reported in the "
          "paper; summarises both classes)\n")
    print(md_table(
        ["architecture", "mean (s)"],
        [[arch, fmt(means[arch])] for arch in ("Hybrid", "THadoop", "RHadoop")],
    ))
    print()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replay-jobs", type=int, default=6000)
    args = parser.parse_args()

    print("<!-- BEGIN GENERATED (tools/make_experiments.py) -->\n")
    section_fig3()
    section_measurement(
        "Fig. 5 — Wordcount (shuffle/input 1.6)", fig5_wordcount,
        2 * GB, 64 * GB,
        "Execution time normalized by up-OFS (lower = faster; paper "
        "normalizes the same way).",
    )
    section_measurement(
        "Fig. 6 — Grep (shuffle/input 0.4)", fig6_grep,
        2 * GB, 64 * GB,
        "Execution time normalized by up-OFS.",
    )
    section_measurement(
        "Fig. 9 — TestDFSIO write (map-intensive)", fig9_dfsio,
        3 * GB, 100 * GB,
        "Execution time normalized by up-OFS.  up-HDFS is infeasible "
        "beyond ~80 GB (91 GB local disks), shown as —.",
    )
    section_crosspoints()
    section_fig10(args.replay_jobs)
    print("<!-- END GENERATED -->")


if __name__ == "__main__":
    main()
