#!/usr/bin/env python
"""Regenerate the bundled workload artifacts under data/.

The artifacts are deterministic snapshots of the FB-2009 synthesized
generator, shipped so downstream users (and tests) have a stable trace
that does not move when the generator is tuned:

* ``data/fb2009_sample_600.swim.tsv`` — 600 jobs, SWIM text format.
* ``data/fb2009_sample_600.json``     — the same trace, native format.
"""

from __future__ import annotations

from pathlib import Path

from repro.workload.fb2009 import DAY, generate_fb2009
from repro.workload.swim import save_swim

DATA_DIR = Path(__file__).parent.parent / "data"
NUM_JOBS = 600
SEED = 2009


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    trace = generate_fb2009(
        num_jobs=NUM_JOBS, seed=SEED, duration=DAY * NUM_JOBS / 6000
    )
    save_swim(trace, DATA_DIR / "fb2009_sample_600.swim.tsv")
    trace.save(DATA_DIR / "fb2009_sample_600.json")
    print(f"wrote {NUM_JOBS}-job artifacts to {DATA_DIR}")


if __name__ == "__main__":
    main()
