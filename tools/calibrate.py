#!/usr/bin/env python
"""Calibration search for the performance model.

Tunes the free constants (per-app CPU costs + the Calibration fields)
against the paper's qualitative targets:

* cross points: Wordcount ~32 GB, Grep ~16 GB, TestDFSIO-write ~10 GB;
* small-input ordering (execution time ascending):
  up-HDFS < up-OFS < out-HDFS < out-OFS for shuffle apps;
* large-input ordering: out-OFS < out-HDFS < up-OFS (< up-HDFS);
* Fig. 7 tail: out-OFS/up-OFS ratio at 100 GB in [0.6, 0.95];
* shuffle phase always shorter on scale-up;
* HDFS ~10-25 % better than OFS at small inputs on the same cluster.

Run:  python tools/calibrate.py [--rounds N] [--quick]

Prints the best parameter set; the winner is frozen into
repro/core/calibration.py and repro/apps/*.py, and locked in by
tests/test_paper_fidelity.py.
"""

from __future__ import annotations

import argparse
import math
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.figures import fig10_trace_replay
from repro.analysis.sweep import sweep_architectures
from repro.apps import GREP, TESTDFSIO_WRITE, WORDCOUNT
from repro.core.architectures import out_hdfs, out_ofs, up_hdfs, up_ofs
from repro.core.calibration import Calibration
from repro.core.crosspoint import estimate_cross_point
from repro.units import GB

ARCHS = (up_ofs(), up_hdfs(), out_ofs(), out_hdfs())

CROSS_SIZES = {
    "wordcount": [s * GB for s in (8, 16, 24, 32, 48, 64, 96)],
    "grep": [s * GB for s in (4, 8, 12, 16, 24, 32, 48)],
    "testdfsio-write": [s * GB for s in (3, 5, 8, 10, 15, 20, 30)],
}
CROSS_TARGETS = {"wordcount": 32 * GB, "grep": 16 * GB, "testdfsio-write": 10 * GB}


def make_apps(params: Dict[str, float]):
    return {
        "wordcount": replace(WORDCOUNT, map_cpu_per_mb=params["wc_cpu"]),
        "grep": replace(GREP, map_cpu_per_mb=params["grep_cpu"]),
        "testdfsio-write": replace(TESTDFSIO_WRITE, map_cpu_per_mb=params["dfsio_cpu"]),
    }


def make_calibration(params: Dict[str, float]) -> Calibration:
    return Calibration(
        ofs_access_latency=params["ofs_lat"],
        ofs_stream_cap=params["ofs_cap"] * 1e6,
        ofs_per_job_overhead=params["ofs_job"],
        task_overhead_up=params["ovh_up"],
        task_overhead_out=params["ovh_out"],
        ramdisk_bandwidth=params["ramdisk"] * 1e6,
        shuffle_residual=params["residual"],
        spill_io_factor=params["spill"],
        hdfs_write_buffer_factor=params["wbuf"],
        core_speed_up=params["speed_up"],
        job_setup_overhead=params["job_setup"],
        hdfs_page_cache_bytes=params["cache"] * GB,
        disk_seek_penalty=params["seek"],
    )


def _exec_times(grid, name) -> List[Optional[float]]:
    return grid[name].execution_times


def _order_penalty(values: List[Optional[float]], tolerance: float = 0.0) -> float:
    """Penalty when values are not strictly ascending (None = skip)."""
    penalty = 0.0
    present = [v for v in values if v is not None]
    for a, b in zip(present, present[1:]):
        if a >= b * (1 - tolerance):
            penalty += 2.0 + math.log(max(a / b, 1.0))
    return penalty


def _band_penalty(value: float, low: float, high: float, weight: float = 5.0) -> float:
    if low <= value <= high:
        return 0.0
    edge = low if value < low else high
    return weight * abs(math.log(value / edge))


def evaluate(params: Dict[str, float], verbose: bool = False) -> Tuple[float, Dict]:
    cal = make_calibration(params)
    apps = make_apps(params)
    loss = 0.0
    diag: Dict[str, object] = {}

    # Cross points (up-OFS vs out-OFS).
    for app_name, sizes in CROSS_SIZES.items():
        grid = sweep_architectures((up_ofs(), out_ofs()), apps[app_name], sizes, cal)
        up_t = _exec_times(grid, "up-OFS")
        out_t = _exec_times(grid, "out-OFS")
        cross = estimate_cross_point(sizes, up_t, out_t)
        diag[f"cross_{app_name}"] = None if cross is None else cross / GB
        if cross is None:
            loss += 50.0
        else:
            loss += 12.0 * math.log(cross / CROSS_TARGETS[app_name]) ** 2

    # Small-input ordering + HDFS-vs-OFS gaps at 2 GB (3 GB for DFSIO).
    for app_name, size in (("wordcount", 2 * GB), ("grep", 2 * GB),
                           ("testdfsio-write", 3 * GB)):
        grid = sweep_architectures(ARCHS, apps[app_name], [size], cal)
        t = {name: _exec_times(grid, name)[0] for name in grid}
        diag[f"small_{app_name}"] = {k: round(v, 1) for k, v in t.items()}
        loss += _order_penalty([t["up-HDFS"], t["up-OFS"], t["out-HDFS"], t["out-OFS"]])
        # HDFS should beat OFS by ~10-25% at small sizes on each cluster.
        loss += _band_penalty(t["up-OFS"] / t["up-HDFS"], 1.05, 1.3, weight=6.0)
        loss += _band_penalty(t["out-OFS"] / t["out-HDFS"], 1.08, 1.4, weight=6.0)
        # up-OFS should beat out-HDFS by ~10-25%.
        loss += _band_penalty(t["out-HDFS"] / t["up-OFS"], 1.05, 1.4, weight=4.0)

    # Large-input ordering at 64 GB (50 GB for DFSIO); up-HDFS may be None.
    for app_name, size in (("wordcount", 64 * GB), ("grep", 64 * GB),
                           ("testdfsio-write", 50 * GB)):
        grid = sweep_architectures(ARCHS, apps[app_name], [size], cal)
        t = {name: _exec_times(grid, name)[0] for name in grid}
        diag[f"large_{app_name}"] = {
            k: (round(v, 1) if v is not None else None) for k, v in t.items()
        }
        if app_name == "testdfsio-write":
            # Paper Section III-C: out-OFS > up-OFS > out-HDFS at >=10 GB.
            loss += _order_penalty(
                [t["out-OFS"], t["up-OFS"], t["out-HDFS"], t["up-HDFS"]]
            )
        else:
            loss += _order_penalty(
                [t["out-OFS"], t["out-HDFS"], t["up-OFS"], t["up-HDFS"]]
            )
            # Robustness margin: out-HDFS at least ~4% ahead of up-OFS so
            # the ordering survives small parameter perturbations.
            loss += _band_penalty(
                t["out-HDFS"] / t["up-OFS"], 0.55, 0.96, weight=8.0
            )
        # Clear separation at large sizes: out-OFS visibly ahead of up-OFS.
        loss += _band_penalty(t["out-OFS"] / t["up-OFS"], 0.55, 0.92, weight=6.0)

        # Shuffle phase must be shorter on scale-up (shuffle apps).
        if app_name != "testdfsio-write":
            sh_up = grid["up-OFS"].shuffle_phases[0]
            sh_out = grid["out-OFS"].shuffle_phases[0]
            if sh_up is not None and sh_out is not None and sh_up >= sh_out:
                loss += 5.0

    # Fig. 10 (Section V): a 300-job rate-preserving replay must show the
    # hybrid dominating for scale-up jobs and at least beating THadoop
    # for scale-out jobs (the full RHadoop inversion is out of reach of
    # equal-cost physics; see EXPERIMENTS.md).
    replay = fig10_trace_replay(calibration=cal, num_jobs=300)
    hybrid_up = replay["Hybrid"].max_scale_up_time
    thadoop_up = replay["THadoop"].max_scale_up_time
    rhadoop_up = replay["RHadoop"].max_scale_up_time
    hybrid_out = replay["Hybrid"].max_scale_out_time
    thadoop_out = replay["THadoop"].max_scale_out_time
    rhadoop_out = replay["RHadoop"].max_scale_out_time
    diag["fig10_up_max"] = {
        "Hybrid": round(hybrid_up, 1),
        "THadoop": round(thadoop_up, 1),
        "RHadoop": round(rhadoop_up, 1),
    }
    diag["fig10_out_max"] = {
        "Hybrid": round(hybrid_out, 1),
        "THadoop": round(thadoop_out, 1),
        "RHadoop": round(rhadoop_out, 1),
    }
    # Paper's Fig 10(a) ordering: Hybrid < RHadoop < THadoop.
    loss += _order_penalty([hybrid_up, rhadoop_up, thadoop_up])
    # Fig 10(b): RHadoop < THadoop reproduces; the Hybrid's 12-node
    # scale-out side cannot beat 24 equal nodes in this model (documented
    # deviation) — keep it within ~1.6x of the best baseline.
    loss += _order_penalty([rhadoop_out, thadoop_out])
    loss += _band_penalty(hybrid_out / rhadoop_out, 0.5, 1.6, weight=4.0)

    # Fig. 7 tail: ratio at 100 GB for wordcount and grep in [0.6, 0.95].
    for app_name in ("wordcount", "grep"):
        grid = sweep_architectures(
            (up_ofs(), out_ofs()), apps[app_name], [100 * GB], cal
        )
        ratio = (
            _exec_times(grid, "out-OFS")[0] / _exec_times(grid, "up-OFS")[0]
        )
        diag[f"ratio100_{app_name}"] = round(ratio, 3)
        loss += _band_penalty(ratio, 0.60, 0.88, weight=10.0)

    if verbose:
        for key, value in diag.items():
            print(f"  {key}: {value}")
    return loss, diag


#: Initial parameter vector (see module docstring for meanings/units:
#: cpu costs s/MB, bandwidths MB/s, times s).
START: Dict[str, float] = {
    "wc_cpu": 0.12943,
    "grep_cpu": 0.03663,
    "dfsio_cpu": 0.0307,
    "ofs_lat": 0.14023,
    "ofs_cap": 81.319,
    "ofs_job": 0.10509,
    "ovh_up": 0.60989,
    "ovh_out": 1.98,
    "ramdisk": 1117.6,
    "residual": 0.1,
    "spill": 0.2,
    "wbuf": 1.968,
    "speed_up": 1.1,
    "job_setup": 2.2702,
    "cache": 14.4,
    "seek": 0.2,
}

#: Per-parameter hard bounds (physical plausibility).
BOUNDS: Dict[str, Tuple[float, float]] = {
    # CPU costs capped so I/O still matters at scale: unbounded, the
    # search inflates CPU until every storage difference washes out.
    "wc_cpu": (0.01, 0.14),
    "grep_cpu": (0.005, 0.08),
    "dfsio_cpu": (0.001, 0.05),
    "ofs_lat": (0.05, 4.0),
    "ofs_cap": (15.0, 400.0),
    "ofs_job": (0.0, 12.0),
    "ovh_up": (0.1, 4.0),
    "ovh_out": (0.2, 6.0),
    "ramdisk": (500.0, 6000.0),
    "residual": (0.1, 0.9),
    "spill": (0.2, 2.5),
    "wbuf": (1.0, 8.0),
    # >= 1.1: the paper's narrative requires a real per-core advantage
    # for the 2.66 GHz Xeons over the 2.3 GHz Opterons.
    "speed_up": (1.1, 2.2),
    "job_setup": (0.5, 5.0),
    "cache": (2.0, 24.0),
    "seek": (0.0, 0.5),
}

MULTIPLIERS = (0.75, 0.9, 1.11, 1.33)


def coordinate_descent(
    start: Dict[str, float], rounds: int, verbose: bool = True
) -> Dict[str, float]:
    params = dict(start)
    best_loss, _ = evaluate(params)
    if verbose:
        print(f"start loss: {best_loss:.3f}")
    for round_num in range(rounds):
        improved = False
        for key in params:
            low, high = BOUNDS[key]
            for mult in MULTIPLIERS:
                candidate = dict(params)
                candidate[key] = min(high, max(low, params[key] * mult))
                if candidate[key] == params[key]:
                    continue
                loss, _ = evaluate(candidate)
                if loss < best_loss - 1e-9:
                    best_loss = loss
                    params = candidate
                    improved = True
                    if verbose:
                        print(
                            f"  round {round_num}: {key}={params[key]:.4g} "
                            f"-> loss {best_loss:.3f}"
                        )
        if not improved:
            break
    return params


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--quick", action="store_true", help="evaluate START only")
    args = parser.parse_args()
    if args.quick:
        loss, _ = evaluate(START, verbose=True)
        print(f"loss: {loss:.3f}")
        return
    params = coordinate_descent(START, rounds=args.rounds)
    print("\nbest parameters:")
    for key, value in params.items():
        print(f"  {key} = {value:.5g}")
    loss, _ = evaluate(params, verbose=True)
    print(f"final loss: {loss:.3f}")


if __name__ == "__main__":
    main()
